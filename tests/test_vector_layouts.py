"""Differential matrix for the vector backend's rumor-state layouts.

The vector engine now stores rumor knowledge in one of three
memory-specialized layouts — ``dense`` (bitset matrix), ``broadcast``
(one byte-column per rumor), ``chunked`` (budget-bounded column blocks)
— all behind the same :class:`~repro.sim.vector.VectorState` API.  The
layout is a *representation* choice, so every layout must be
bit-identical to the scalar :class:`~repro.sim.engine.Engine`: same
completion rounds, same per-node knowledge, same metrics, for every
oblivious protocol, under crash schedules and responder caps.  This
suite pins that with a hypothesis matrix over
layouts x {push--pull, push, pull, flooding} x engine configs, plus
deterministic legs for layout auto-selection, multi-block chunked runs,
RR Broadcast on custom target tables, and a committed golden event
stream each layout must reproduce byte for byte (re-bless with
``REPRO_UPDATE_GOLDEN=1`` after a deliberate semantic change).
"""

import os
import pathlib
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.graphs import generators
from repro.graphs.latency_models import uniform_latency
from repro.obs import Recorder, events_to_jsonl
from repro.protocols.base import PhaseRunner, per_node_rng_factory
from repro.protocols.flooding import FloodingProtocol
from repro.protocols.push_pull import (
    PullProtocol,
    PushProtocol,
    PushPullProtocol,
)
from repro.protocols.rr_broadcast import rr_broadcast_factory
from repro.protocols.spanner import DirectedSpanner
from repro.sim.engine import Engine
from repro.sim.runner import all_to_all_complete, broadcast_complete, run_until_complete
from repro.sim.state import NetworkState
from repro.sim.vector import (
    BroadcastVectorState,
    ChunkedVectorState,
    DEFAULT_MAX_STATE_BYTES,
    STATE_LAYOUTS,
    VectorEngine,
    VectorState,
    current_max_state_bytes,
    state_budget,
)
from repro.testing import (
    assert_engines_agree,
    connected_latency_graphs,
    crash_schedules,
    engine_configs,
    run_differential,
    seeds,
    state_layouts,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

LAYOUTS = sorted(STATE_LAYOUTS)

#: name -> builder(rumor) -> per-node protocol constructor over an rng.
#: ``flooding`` is the knows-gated (push-only) variant, so the matrix
#: also exercises the gated fast path on every layout.
PROTOCOLS = {
    "push-pull": lambda rumor: (lambda rng: PushPullProtocol(rng)),
    "push": lambda rumor: (lambda rng: PushProtocol(rng, rumor)),
    "pull": lambda rumor: (lambda rng: PullProtocol(rng, rumor)),
    "flooding": lambda rumor: (lambda rng: FloodingProtocol(rumor)),
}


def broadcast_setup(graph):
    source = graph.nodes()[0]
    rumor = ("rumor", source)

    def make_state():
        state = NetworkState(graph.nodes())
        state.add_rumor(source, rumor)
        return state

    return rumor, make_state


def forced_layout(make_base, layout):
    """A state builder yielding ``make_base()`` in the given layout."""

    def make_state():
        return VectorState.from_network_state(make_base(), layout=layout)

    return make_state


class TestLayoutMatrix:
    """Every layout x every oblivious protocol vs the scalar engine."""

    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("variant", sorted(PROTOCOLS))
    @given(connected_latency_graphs(max_nodes=12), seeds(), engine_configs())
    @settings(max_examples=6, deadline=None)
    def test_layouts_bit_identical_to_scalar(
        self, layout, variant, graph, seed, config
    ):
        rumor, make_base = broadcast_setup(graph)
        build = PROTOCOLS[variant](rumor)

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: build(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=forced_layout(make_base, layout),
            make_reference_state=make_base,
            predicate=broadcast_complete(rumor),
            fresh_snapshots=config["fresh_snapshots"],
            max_incoming_per_round=config["max_incoming_per_round"],
            max_rounds=5_000,
            backend="vector",
            reference_cls=Engine,
        )
        assert_engines_agree(report)
        assert report.rounds is not None

    @given(
        state_layouts(),
        connected_latency_graphs(min_nodes=6, max_nodes=12),
        seeds(100),
        st.data(),
    )
    @settings(max_examples=10, deadline=None)
    def test_crash_schedules_agree(self, layout, graph, seed, data):
        rumor, make_base = broadcast_setup(graph)
        source = graph.nodes()[0]
        crashes = data.draw(crash_schedules(graph.nodes(), protect=[source]))

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=forced_layout(make_base, layout),
            make_reference_state=make_base,
            predicate=lambda engine: engine.round >= 25,
            make_failure_model=lambda: crashes,  # stateless: sharable
            backend="vector",
            reference_cls=Engine,
        )
        assert_engines_agree(report)

    def test_chunked_multi_block_all_to_all_agrees(self):
        # 80 self-rumors need 2 bitset words; a budget of n*8 bytes caps
        # blocks at one word each, so the run genuinely spans blocks.
        graph = generators.erdos_renyi(
            80, 0.08, latency_model=uniform_latency(1, 4), rng=random.Random(7)
        )

        def make_base():
            state = NetworkState(graph.nodes())
            state.seed_self_rumors()
            return state

        def make_state():
            with state_budget(len(graph.nodes()) * 8):
                state = VectorState.from_network_state(make_base())
            assert isinstance(state, ChunkedVectorState)
            assert len(state._blocks) > 1
            return state

        def make_factory():
            make_rng = per_node_rng_factory(11)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            make_reference_state=make_base,
            predicate=all_to_all_complete(),
            max_rounds=5_000,
            backend="vector",
            reference_cls=Engine,
        )
        assert_engines_agree(report)
        assert report.rounds is not None


class TestLayoutSelection:
    """from_network_state picks the layout from the observed universe."""

    def test_small_universe_picks_broadcast(self):
        state = NetworkState(range(10))
        state.add_rumor(0, "r")
        vector = VectorState.from_network_state(state)
        assert isinstance(vector, BroadcastVectorState)
        assert vector.layout == "broadcast"

    def test_medium_universe_within_budget_stays_dense(self):
        state = NetworkState(range(10))
        state.seed_self_rumors()  # 10 rumors > the broadcast cutoff of 8
        vector = VectorState.from_network_state(state)
        assert type(vector) is VectorState
        assert vector.layout == "dense"

    def test_over_budget_universe_chunks(self):
        state = NetworkState(range(100))
        state.seed_self_rumors()  # dense would need n * 2 words * 8 bytes
        vector = VectorState.from_network_state(state, max_state_bytes=100 * 8)
        assert isinstance(vector, ChunkedVectorState)
        assert vector.layout == "chunked"

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_forced_layout_is_respected(self, layout):
        state = NetworkState(range(6))
        state.add_rumor(0, "r")
        vector = VectorState.from_network_state(state, layout=layout)
        assert vector.layout == layout
        assert vector.rumors(0) == {"r"}

    def test_unknown_layout_rejected(self):
        state = NetworkState(range(4))
        with pytest.raises(SimulationError, match="unknown state layout"):
            VectorState.from_network_state(state, layout="sparse-coo")

    def test_budget_scope_and_env_var(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_STATE_BYTES", raising=False)
        assert current_max_state_bytes() == DEFAULT_MAX_STATE_BYTES
        monkeypatch.setenv("REPRO_MAX_STATE_BYTES", "4096")
        assert current_max_state_bytes() == 4096
        with state_budget(123):
            assert current_max_state_bytes() == 123
        assert current_max_state_bytes() == 4096

    def test_state_nbytes_tracks_layout(self):
        base = NetworkState(range(64))
        base.add_rumor(0, "r")
        # scalar masks: one node holds bit 0 -> one byte
        assert base.state_nbytes() == 1
        broadcast = VectorState.from_network_state(base, layout="broadcast")
        assert broadcast.state_nbytes() == 64  # one uint8 column
        dense = VectorState.from_network_state(base, layout="dense")
        assert dense.state_nbytes() == 64 * 8  # one word per node
        chunked = VectorState.from_network_state(base, layout="chunked")
        assert chunked.state_nbytes() == 64 * 8  # one one-word block


def _oriented_spanner(graph) -> DirectedSpanner:
    """The graph itself, oriented from repr-lower to repr-higher node."""
    out_edges = {v: [] for v in graph.nodes()}
    for u, v, _ in graph.edges():
        tail, head = (u, v) if repr(u) <= repr(v) else (v, u)
        out_edges[tail].append(head)
    return DirectedSpanner(graph=graph, out_edges=out_edges, k=1)


class TestRRBroadcastVector:
    """RR Broadcast (fixed-duration round-robin over custom targets)."""

    GRAPH = generators.ring_of_cliques(4, 4, inter_latency=2, rng=random.Random(2))

    def _run(self, backend, state=None):
        runner = PhaseRunner(self.GRAPH, state=state, backend=backend)
        runner.run_phase(
            rr_broadcast_factory(_oriented_spanner(self.GRAPH), 3),
            latencies_known=True,
        )
        return (
            runner.total_rounds,
            {v: runner.state.rumors(v) for v in self.GRAPH.nodes()},
        )

    def test_vector_backend_matches_scalar(self):
        assert self._run("vector") == self._run("scalar")

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_every_layout_matches_scalar(self, layout):
        seeded = NetworkState(self.GRAPH.nodes())
        seeded.seed_self_rumors()
        forced = VectorState.from_network_state(seeded, layout=layout)
        assert self._run("vector", state=forced) == self._run("scalar")


def _bucketed_trace(backend, layout=None) -> str:
    """Push--pull broadcast over latencies 1..5, recorded event stream.

    The recorder forces the vector engine onto its sequential mirror
    path, which must replay the scalar engine's canonical stream byte
    for byte whatever the storage layout underneath.
    """
    graph = generators.erdos_renyi(
        16, 0.3, latency_model=uniform_latency(1, 5), rng=random.Random(3)
    )
    source = graph.nodes()[0]
    rumor = ("rumor", source)
    state = NetworkState(graph.nodes())
    state.add_rumor(source, rumor)
    make_rng = per_node_rng_factory(5)

    def factory(node):
        return PushPullProtocol(make_rng(node))

    recorder = Recorder.in_memory()
    if backend == "vector":
        engine = VectorEngine(
            graph,
            factory,
            state=VectorState.from_network_state(state, layout=layout),
            recorder=recorder,
        )
    else:
        engine = Engine(graph, factory, state=state, recorder=recorder)
    run_until_complete(engine, broadcast_complete(rumor), "layout-golden")
    return events_to_jsonl(recorder.events)


GOLDEN_FILE = "push_pull_layouts_bucketed.jsonl"


class TestLayoutGoldenTraces:
    def test_scalar_golden_committed(self):
        generated = _bucketed_trace("scalar")
        path = GOLDEN_DIR / GOLDEN_FILE
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_bytes(generated.encode("ascii"))
            pytest.skip(f"re-blessed {GOLDEN_FILE}")
        assert path.exists(), (
            f"missing golden file {path}; generate with REPRO_UPDATE_GOLDEN=1"
        )
        assert path.read_bytes() == generated.encode("ascii"), (
            f"{GOLDEN_FILE} drifted from the committed scalar stream — if "
            "intentional, re-bless with REPRO_UPDATE_GOLDEN=1 and review"
        )

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_layout_reproduces_committed_bytes(self, layout):
        path = GOLDEN_DIR / GOLDEN_FILE
        assert path.exists(), (
            f"missing golden file {path}; generate with REPRO_UPDATE_GOLDEN=1"
        )
        generated = _bucketed_trace("vector", layout=layout)
        assert path.read_bytes() == generated.encode("ascii"), (
            f"layout {layout!r} diverged from the committed golden stream — "
            "every layout must replay the scalar engine byte for byte"
        )
