"""Differential tests: Engine vs ReferenceEngine on random weighted graphs.

Property-based: for random connected latency graphs, random seeds, and the
main protocols, the production engine and the naive reference engine must
agree on completion rounds, per-node knowledge, and metrics.  A last test
proves the harness has teeth by feeding it a deliberately broken engine.
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.graphs.generators import ring_of_cliques
from repro.protocols.base import per_node_rng_factory
from repro.protocols.eid import run_eid, run_general_eid
from repro.protocols.flooding import FloodingProtocol
from repro.protocols.push_pull import PushPullProtocol
from repro.sim.engine import Engine, NodeProtocol
from repro.sim.failures import MessageLoss
from repro.sim.runner import broadcast_complete
from repro.sim.state import NetworkState
from repro.testing import (
    ReferenceEngine,
    assert_engines_agree,
    connected_latency_graphs,
    crash_schedules,
    engine_configs,
    large_dense_graphs,
    run_differential,
    seeds,
)


def broadcast_setup(graph):
    source = graph.nodes()[0]
    rumor = ("rumor", source)

    def make_state():
        state = NetworkState(graph.nodes())
        state.add_rumor(source, rumor)
        return state

    return rumor, make_state


class TestPushPullDifferential:
    @given(connected_latency_graphs(), seeds())
    @settings(max_examples=25, deadline=None)
    def test_engines_agree(self, graph, seed):
        rumor, make_state = broadcast_setup(graph)

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            max_rounds=5_000,
        )
        assert_engines_agree(report)
        assert report.rounds is not None


class TestFloodingDifferential:
    @given(connected_latency_graphs())
    @settings(max_examples=25, deadline=None)
    def test_engines_agree(self, graph):
        rumor, make_state = broadcast_setup(graph)
        report = run_differential(
            graph,
            make_factory=lambda: (lambda node: FloodingProtocol(None)),
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            max_rounds=5_000,
        )
        assert_engines_agree(report)

    @given(connected_latency_graphs(max_nodes=8))
    @settings(max_examples=15, deadline=None)
    def test_push_only_engines_agree(self, graph):
        rumor, make_state = broadcast_setup(graph)
        report = run_differential(
            graph,
            make_factory=lambda: (lambda node: FloodingProtocol(rumor)),
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            max_rounds=20_000,
        )
        assert_engines_agree(report)


class TestEIDDifferential:
    """EID runs whole multi-phase pipelines; compare the composite reports."""

    @given(connected_latency_graphs(max_nodes=8, max_latency=4), seeds(100))
    @settings(max_examples=8, deadline=None)
    def test_eid_reports_identical(self, graph, seed):
        diameter = max(1, graph.weighted_diameter())
        fast = run_eid(graph, diameter, seed=seed)
        slow = run_eid(graph, diameter, seed=seed, engine_factory=ReferenceEngine)
        assert fast.rounds == slow.rounds
        assert fast.exchanges == slow.exchanges
        assert fast.diameter_estimate == slow.diameter_estimate

    @given(seeds(100))
    @settings(max_examples=3, deadline=None)
    def test_general_eid_reports_identical(self, seed):
        graph = ring_of_cliques(3, 4, inter_latency=5)
        fast = run_general_eid(graph, seed=seed)
        slow = run_general_eid(graph, seed=seed, engine_factory=ReferenceEngine)
        assert fast == slow


class OffByOneDelivery(Engine):
    """Broken engine: every exchange delivers one round early."""

    def _initiate(self, initiator, responder):
        before = self.pending_exchanges()
        super()._initiate(initiator, responder)
        if self.pending_exchanges() == before:
            return  # the exchange was dropped (lost/rejected), nothing queued
        # The newest exchange is the one with the highest sequence number;
        # move it one delivery bucket earlier.
        round_key, exchange = max(
            ((r, bucket[-1]) for r, bucket in self._in_flight.items() if bucket),
            key=lambda item: item[1].sequence,
        )
        self._in_flight[round_key].pop()
        if not self._in_flight[round_key]:
            del self._in_flight[round_key]
        exchange.delivers_at -= 1
        self._in_flight.setdefault(exchange.delivers_at, []).append(exchange)


class TestHarnessHasTeeth:
    def test_broken_engine_is_caught(self):
        graph = ring_of_cliques(4, 5, inter_latency=7)
        rumor, make_state = broadcast_setup(graph)

        def make_factory():
            make_rng = per_node_rng_factory(3)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            engine_cls=OffByOneDelivery,
        )
        assert not report.equivalent
        with pytest.raises(SimulationError, match="diverged"):
            assert_engines_agree(report)

    def test_reference_engine_rejects_bad_cap(self):
        graph = ring_of_cliques(3, 3)
        with pytest.raises(SimulationError):
            ReferenceEngine(
                graph, lambda node: FloodingProtocol(None), max_incoming_per_round=0
            )


class RoundRobinPinger(NodeProtocol):
    """Ping-only protocol: each node cycles its neighbors for a few rounds.

    ``sends_payload = False`` makes every exchange a pure ping, and
    ``is_done`` flips to True mid-run while pings are still in flight —
    exercising the optimized engine's done-node parking and wakeup.
    """

    sends_payload = False

    def __init__(self, node, graph, rounds=12):
        self._neighbors = sorted(graph.neighbors(node), key=repr)
        self._budget = rounds
        self._sent = 0

    def on_round(self, ctx):
        if self._sent >= self._budget:
            return None
        target = self._neighbors[self._sent % len(self._neighbors)]
        self._sent += 1
        return target

    def is_done(self, ctx):
        return self._sent >= self._budget


class TestConfigVariantDifferential:
    """Differential runs over the model-variant configuration space."""

    @given(connected_latency_graphs(max_nodes=12), seeds(), engine_configs())
    @settings(max_examples=20, deadline=None)
    def test_fresh_snapshots_and_cap_agree(self, graph, seed, config):
        rumor, make_state = broadcast_setup(graph)

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            fresh_snapshots=config["fresh_snapshots"],
            max_incoming_per_round=config["max_incoming_per_round"],
            max_rounds=5_000,
        )
        assert_engines_agree(report)

    @given(large_dense_graphs(max_nodes=25), seeds(100))
    @settings(max_examples=8, deadline=None)
    def test_larger_denser_graphs_agree(self, graph, seed):
        rumor, make_state = broadcast_setup(graph)

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            max_rounds=5_000,
        )
        assert_engines_agree(report)
        assert report.rounds is not None

    @given(large_dense_graphs(min_nodes=8, max_nodes=16), seeds(100), st.data())
    @settings(max_examples=8, deadline=None)
    def test_crash_schedules_agree(self, graph, seed, data):
        rumor, make_state = broadcast_setup(graph)
        source = graph.nodes()[0]
        crashes = data.draw(crash_schedules(graph.nodes(), protect=[source]))

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=lambda engine: engine.round >= 25,
            make_failure_model=lambda: crashes,  # stateless: sharable
        )
        assert_engines_agree(report)

    @given(connected_latency_graphs(max_nodes=10), seeds(100))
    @settings(max_examples=10, deadline=None)
    def test_message_loss_agree(self, graph, seed):
        rumor, make_state = broadcast_setup(graph)

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=lambda engine: engine.round >= 25,
            # RNG-stateful: each engine must consume its own stream.
            make_failure_model=lambda: MessageLoss(p=0.3, seed=seed),
        )
        assert_engines_agree(report)

    @given(connected_latency_graphs(max_nodes=10), seeds(100))
    @settings(max_examples=15, deadline=None)
    def test_ping_only_agree(self, graph, seed):
        report = run_differential(
            graph,
            make_factory=lambda: (lambda node: RoundRobinPinger(node, graph)),
            max_rounds=5_000,
        )
        assert_engines_agree(report)
        assert report.rounds is not None
