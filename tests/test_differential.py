"""Differential tests: Engine vs ReferenceEngine on random weighted graphs.

Property-based: for random connected latency graphs, random seeds, and the
main protocols, the production engine and the naive reference engine must
agree on completion rounds, per-node knowledge, and metrics.  A last test
proves the harness has teeth by feeding it a deliberately broken engine.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.graphs.generators import ring_of_cliques
from repro.protocols.base import per_node_rng_factory
from repro.protocols.eid import run_eid, run_general_eid
from repro.protocols.flooding import FloodingProtocol
from repro.protocols.push_pull import PushPullProtocol
from repro.sim.engine import Engine
from repro.sim.runner import broadcast_complete
from repro.sim.state import NetworkState
from repro.testing import (
    ReferenceEngine,
    assert_engines_agree,
    connected_latency_graphs,
    run_differential,
    seeds,
)


def broadcast_setup(graph):
    source = graph.nodes()[0]
    rumor = ("rumor", source)

    def make_state():
        state = NetworkState(graph.nodes())
        state.add_rumor(source, rumor)
        return state

    return rumor, make_state


class TestPushPullDifferential:
    @given(connected_latency_graphs(), seeds())
    @settings(max_examples=25, deadline=None)
    def test_engines_agree(self, graph, seed):
        rumor, make_state = broadcast_setup(graph)

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            max_rounds=5_000,
        )
        assert_engines_agree(report)
        assert report.rounds is not None


class TestFloodingDifferential:
    @given(connected_latency_graphs())
    @settings(max_examples=25, deadline=None)
    def test_engines_agree(self, graph):
        rumor, make_state = broadcast_setup(graph)
        report = run_differential(
            graph,
            make_factory=lambda: (lambda node: FloodingProtocol(None)),
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            max_rounds=5_000,
        )
        assert_engines_agree(report)

    @given(connected_latency_graphs(max_nodes=8))
    @settings(max_examples=15, deadline=None)
    def test_push_only_engines_agree(self, graph):
        rumor, make_state = broadcast_setup(graph)
        report = run_differential(
            graph,
            make_factory=lambda: (lambda node: FloodingProtocol(rumor)),
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            max_rounds=20_000,
        )
        assert_engines_agree(report)


class TestEIDDifferential:
    """EID runs whole multi-phase pipelines; compare the composite reports."""

    @given(connected_latency_graphs(max_nodes=8, max_latency=4), seeds(100))
    @settings(max_examples=8, deadline=None)
    def test_eid_reports_identical(self, graph, seed):
        diameter = max(1, graph.weighted_diameter())
        fast = run_eid(graph, diameter, seed=seed)
        slow = run_eid(graph, diameter, seed=seed, engine_factory=ReferenceEngine)
        assert fast.rounds == slow.rounds
        assert fast.exchanges == slow.exchanges
        assert fast.diameter_estimate == slow.diameter_estimate

    @given(seeds(100))
    @settings(max_examples=3, deadline=None)
    def test_general_eid_reports_identical(self, seed):
        graph = ring_of_cliques(3, 4, inter_latency=5)
        fast = run_general_eid(graph, seed=seed)
        slow = run_general_eid(graph, seed=seed, engine_factory=ReferenceEngine)
        assert fast == slow


class OffByOneDelivery(Engine):
    """Broken engine: every exchange delivers one round early."""

    def _initiate(self, initiator, responder):
        super()._initiate(initiator, responder)
        if self._in_flight:
            self._in_flight[-1].delivers_at -= 1
            heapq.heapify(self._in_flight)


class TestHarnessHasTeeth:
    def test_broken_engine_is_caught(self):
        graph = ring_of_cliques(4, 5, inter_latency=7)
        rumor, make_state = broadcast_setup(graph)

        def make_factory():
            make_rng = per_node_rng_factory(3)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            engine_cls=OffByOneDelivery,
        )
        assert not report.equivalent
        with pytest.raises(SimulationError, match="diverged"):
            assert_engines_agree(report)

    def test_reference_engine_rejects_bad_cap(self):
        graph = ring_of_cliques(3, 3)
        with pytest.raises(SimulationError):
            ReferenceEngine(
                graph, lambda node: FloodingProtocol(None), max_incoming_per_round=0
            )
