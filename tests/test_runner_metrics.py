"""Tests for the run helpers, completion predicates, and result records."""

import pytest

from repro.errors import SimulationError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.base import per_node_rng_factory
from repro.protocols.push_pull import PushPullProtocol
from repro.sim.engine import Engine, NodeProtocol
from repro.sim.metrics import DisseminationResult
from repro.sim.runner import (
    all_to_all_complete,
    broadcast_complete,
    local_broadcast_complete,
    run_until_complete,
)
from repro.sim.state import NetworkState


class Idle(NodeProtocol):
    def on_round(self, ctx):
        return None


def push_pull_engine(graph, state=None, seed=0):
    make_rng = per_node_rng_factory(seed)
    return Engine(
        graph,
        lambda node: PushPullProtocol(make_rng(node)),
        state=state,
    )


class TestPredicates:
    def test_broadcast_complete(self):
        g = generators.path(3)
        state = NetworkState(g.nodes())
        engine = Engine(g, lambda v: Idle(), state=state)
        predicate = broadcast_complete("r")
        assert not predicate(engine)
        for node in g.nodes():
            state.add_rumor(node, "r")
        assert predicate(engine)

    def test_all_to_all_complete(self):
        g = generators.path(3)
        state = NetworkState(g.nodes())
        state.seed_self_rumors()
        engine = Engine(g, lambda v: Idle(), state=state)
        predicate = all_to_all_complete()
        assert not predicate(engine)
        for node in g.nodes():
            for other in g.nodes():
                state.add_rumor(node, other)
        assert predicate(engine)

    def test_local_broadcast_complete_unfiltered(self):
        g = LatencyGraph(edges=[(0, 1, 1), (1, 2, 9)])
        state = NetworkState(g.nodes())
        state.seed_self_rumors()
        engine = Engine(g, lambda v: Idle(), state=state)
        predicate = local_broadcast_complete()
        assert not predicate(engine)
        state.add_rumor(0, 1)
        state.add_rumor(1, 0)
        state.add_rumor(1, 2)
        state.add_rumor(2, 1)
        assert predicate(engine)

    def test_local_broadcast_latency_filter(self):
        g = LatencyGraph(edges=[(0, 1, 1), (1, 2, 9)])
        state = NetworkState(g.nodes())
        state.seed_self_rumors()
        state.add_rumor(0, 1)
        state.add_rumor(1, 0)
        engine = Engine(g, lambda v: Idle(), state=state)
        # With threshold 1 the slow pair (1, 2) is exempt.
        assert local_broadcast_complete(1)(engine)
        assert not local_broadcast_complete(9)(engine)


class TestRunUntilComplete:
    def test_already_complete_runs_zero_rounds(self):
        g = generators.path(3)
        engine = push_pull_engine(g)
        result = run_until_complete(engine, lambda e: True, "noop")
        assert result.rounds == 0
        assert result.complete

    def test_raises_on_budget_by_default(self):
        g = generators.path(3)
        engine = Engine(g, lambda v: Idle())
        with pytest.raises(SimulationError):
            run_until_complete(engine, lambda e: False, "never", max_rounds=4)

    def test_allow_incomplete_result(self):
        g = generators.path(3)
        engine = Engine(g, lambda v: Idle())
        result = run_until_complete(
            engine, lambda e: False, "never", max_rounds=4, allow_incomplete=True
        )
        assert not result.complete
        assert result.rounds == 4

    def test_progress_includes_final_state(self):
        g = generators.clique(6)
        state = NetworkState(g.nodes())
        state.add_rumor(0, "r")
        engine = push_pull_engine(g, state=state, seed=2)
        result = run_until_complete(
            engine,
            broadcast_complete("r"),
            "pp",
            track_progress=lambda e: e.state.count_knowing("r"),
        )
        assert result.informed_history[-1] == 6
        assert len(result.informed_history) == result.rounds + 1

    def test_no_tracking_means_no_history(self):
        g = generators.clique(4)
        state = NetworkState(g.nodes())
        state.add_rumor(0, "r")
        engine = push_pull_engine(g, state=state, seed=3)
        result = run_until_complete(engine, broadcast_complete("r"), "pp")
        assert result.informed_history is None


class TestDisseminationResult:
    def test_str_complete(self):
        result = DisseminationResult(
            rounds=5, complete=True, exchanges=10, messages=20, protocol="x"
        )
        assert "complete" in str(result)
        assert "5 rounds" in str(result)

    def test_str_incomplete(self):
        result = DisseminationResult(
            rounds=5, complete=False, exchanges=10, messages=20, protocol="x"
        )
        assert "INCOMPLETE" in str(result)


class TestEngineMetricsAccounting:
    def test_messages_twice_exchanges(self):
        g = generators.clique(5)
        engine = push_pull_engine(g, seed=4)
        for _ in range(6):
            engine.step()
        assert engine.metrics.messages == 2 * engine.metrics.exchanges

    def test_activated_edges_subset_of_graph(self):
        g = generators.grid(3, 3)
        engine = push_pull_engine(g, seed=5)
        for _ in range(10):
            engine.step()
        for u, v in engine.metrics.activated_edges:
            assert g.has_edge(u, v)

    def test_rounds_tracked(self):
        g = generators.path(3)
        engine = push_pull_engine(g)
        for _ in range(7):
            engine.step()
        assert engine.metrics.rounds == 7
        assert engine.round == 7
