"""Tests for the PhaseRunner multi-phase plumbing."""

import pytest

from repro.errors import SimulationError
from repro.graphs import generators
from repro.obs.metrics import default_registry, reset_metrics
from repro.protocols.base import PhaseRunner, per_node_rng_factory
from repro.protocols.dtg import ldtg_factory
from repro.protocols.push_pull import PushPullProtocol
from repro.sim.engine import Engine
from repro.sim.runner import min_rumors_complete
from repro.sim.state import NetworkState
from repro.sim.vector import BroadcastVectorState, VectorState


class TestPerNodeRng:
    def test_streams_differ_between_nodes(self):
        make = per_node_rng_factory(0)
        assert make(0).random() != make(1).random()

    def test_streams_reproducible(self):
        assert per_node_rng_factory(5)(3).random() == per_node_rng_factory(5)(3).random()

    def test_streams_depend_on_seed(self):
        assert per_node_rng_factory(1)(0).random() != per_node_rng_factory(2)(0).random()

    def test_order_independent(self):
        # The stream depends on the node id, not on creation order.
        make = per_node_rng_factory(9)
        b_first = make(1).random()
        make2 = per_node_rng_factory(9)
        make2(0)
        assert make2(1).random() == b_first


class TestPhaseRunner:
    def test_fresh_state_seeds_self_rumors(self):
        g = generators.path(4)
        runner = PhaseRunner(g)
        for node in g.nodes():
            assert runner.state.knows(node, node)

    def test_external_state_not_reseeded(self):
        g = generators.path(3)
        state = NetworkState(g.nodes())
        runner = PhaseRunner(g, state=state)
        assert runner.state.rumors(0) == frozenset()

    def test_rounds_accumulate_across_phases(self):
        g = generators.clique(6)
        runner = PhaseRunner(g)
        runner.run_phase(ldtg_factory(g, 1, run_tag="a"), latencies_known=True)
        first = runner.total_rounds
        runner.run_phase(ldtg_factory(g, 1, run_tag="b"), latencies_known=True)
        assert runner.total_rounds > first

    def test_exchange_and_message_counters(self):
        g = generators.clique(6)
        runner = PhaseRunner(g)
        runner.run_phase(ldtg_factory(g, 1), latencies_known=True)
        assert runner.total_exchanges > 0
        assert runner.total_messages == 2 * runner.total_exchanges

    def test_watch_records_first_completion(self):
        g = generators.path(4)
        target = set(g.nodes())
        runner = PhaseRunner(
            g,
            watch=lambda s: all(target <= s.rumors(v) for v in target),
        )
        assert runner.first_complete_round is None
        # A couple of tagged 1-DTG phases complete all-to-all on a path.
        for i in range(4):
            runner.run_phase(
                ldtg_factory(g, 1, run_tag=f"w{i}"), latencies_known=True
            )
        assert runner.first_complete_round is not None
        assert runner.first_complete_round <= runner.total_rounds

    def test_watch_true_at_start(self):
        g = generators.path(3)
        runner = PhaseRunner(g, watch=lambda s: True)
        assert runner.first_complete_round == 0

    def test_max_rounds_guard(self):
        g = generators.clique(8)
        runner = PhaseRunner(g)
        with pytest.raises(SimulationError):
            runner.run_phase(
                ldtg_factory(g, 1), latencies_known=True, max_rounds=2
            )

    def test_run_phase_returns_engine(self):
        g = generators.path(3)
        runner = PhaseRunner(g)
        engine = runner.run_phase(ldtg_factory(g, 1), latencies_known=True)
        assert engine.state is runner.state
        assert engine.all_done()


def _push_pull_factory(seed):
    make_rng = per_node_rng_factory(seed)
    return lambda node: PushPullProtocol(make_rng(node))


class TestBackendDispatch:
    """Per-phase vector dispatch, fallback bookkeeping, and gates."""

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        reset_metrics()
        yield
        reset_metrics()

    def test_eligible_phase_rides_vector(self):
        g = generators.clique(8)
        runner = PhaseRunner(g, backend="vector")
        runner.run_phase(
            _push_pull_factory(0),
            until=min_rumors_complete(len(g.nodes())),
            name="all-to-all",
        )
        assert runner.phases[-1].backend == "vector"
        assert runner.phase_fallbacks == [None]
        assert isinstance(runner.state, VectorState)

    def test_adaptive_phase_falls_back(self):
        g = generators.clique(6)
        runner = PhaseRunner(g, backend="vector")
        runner.run_phase(ldtg_factory(g, 1), latencies_known=True)
        assert runner.phases[-1].backend == "scalar-fallback"
        assert runner.phase_fallbacks[-1] is not None
        assert "no vector_program" in runner.phase_fallbacks[-1]

    def test_explicit_factory_disables_dispatch(self):
        g = generators.clique(6)
        runner = PhaseRunner(g, backend="vector", engine_factory=Engine)
        runner.run_phase(_push_pull_factory(0), until=lambda s: True)
        assert runner.phases[-1].backend == "scalar"
        assert runner.phase_fallbacks == [None]

    def test_phase_backend_counter_labels(self):
        g = generators.clique(6)
        runner = PhaseRunner(g, backend="vector")
        runner.run_phase(
            _push_pull_factory(0),
            until=min_rumors_complete(len(g.nodes())),
            name="gossip",
        )
        runner.run_phase(ldtg_factory(g, 1), latencies_known=True)
        counter = default_registry().counter("sim_phase_backend")
        assert (
            counter.value(
                backend="vector", protocol="PushPullProtocol", reason="eligible"
            )
            == 1
        )
        assert (
            counter.value(
                backend="scalar-fallback",
                protocol="LDTGProtocol",
                reason="no-vector-program",
            )
            == 1
        )

    def test_min_rumors_gate_ends_phase_early(self):
        g = generators.clique(10)
        # "Every node knows >= 2 rumors" holds long before the all-to-all
        # completion that would otherwise park the oblivious phase.
        early = PhaseRunner(g, backend="vector")
        early.run_phase(_push_pull_factory(3), until=min_rumors_complete(2))
        full = PhaseRunner(g, backend="vector")
        full.run_phase(
            _push_pull_factory(3), until=min_rumors_complete(len(g.nodes()))
        )
        assert 0 < early.total_rounds < full.total_rounds
        for node in g.nodes():
            assert len(early.state.rumors(node)) >= 2

    def test_scalar_phase_then_vector_phase_relayouts(self):
        # A scalar-fallback phase grows the rumor universe on the carried
        # VectorState; the next vector phase must re-pick the layout and
        # keep the accumulated knowledge.
        g = generators.clique(6)
        runner = PhaseRunner(g, backend="vector")
        runner.run_phase(
            _push_pull_factory(1), until=min_rumors_complete(2), name="warm"
        )
        assert isinstance(runner.state, VectorState)
        runner.run_phase(
            ldtg_factory(g, 1, run_tag="grow"), latencies_known=True
        )
        runner.run_phase(
            _push_pull_factory(2),
            until=min_rumors_complete(len(g.nodes())),
            name="finish",
        )
        assert [p.backend for p in runner.phases] == [
            "vector",
            "scalar-fallback",
            "vector",
        ]
        for node in g.nodes():
            assert set(g.nodes()) <= runner.state.rumors(node)

    def test_broadcast_layout_carryover(self):
        # A small universe starts on the broadcast layout; the carried
        # state stays a VectorState across phases without densifying.
        g = generators.clique(6)
        state = NetworkState(g.nodes())
        state.add_rumor(g.nodes()[0], "seed")
        vstate = VectorState.from_network_state(state)
        assert isinstance(vstate, BroadcastVectorState)
        runner = PhaseRunner(g, state=vstate, backend="vector")
        runner.run_phase(
            _push_pull_factory(5),
            until=lambda s: all(s.knows(v, "seed") for v in g.nodes()),
        )
        assert runner.phases[-1].backend == "vector"
        assert isinstance(runner.state, VectorState)
        for node in g.nodes():
            assert runner.state.knows(node, "seed")
