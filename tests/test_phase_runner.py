"""Tests for the PhaseRunner multi-phase plumbing."""

import pytest

from repro.errors import SimulationError
from repro.graphs import generators
from repro.protocols.base import PhaseRunner, per_node_rng_factory
from repro.protocols.dtg import ldtg_factory
from repro.sim.state import NetworkState


class TestPerNodeRng:
    def test_streams_differ_between_nodes(self):
        make = per_node_rng_factory(0)
        assert make(0).random() != make(1).random()

    def test_streams_reproducible(self):
        assert per_node_rng_factory(5)(3).random() == per_node_rng_factory(5)(3).random()

    def test_streams_depend_on_seed(self):
        assert per_node_rng_factory(1)(0).random() != per_node_rng_factory(2)(0).random()

    def test_order_independent(self):
        # The stream depends on the node id, not on creation order.
        make = per_node_rng_factory(9)
        b_first = make(1).random()
        make2 = per_node_rng_factory(9)
        make2(0)
        assert make2(1).random() == b_first


class TestPhaseRunner:
    def test_fresh_state_seeds_self_rumors(self):
        g = generators.path(4)
        runner = PhaseRunner(g)
        for node in g.nodes():
            assert runner.state.knows(node, node)

    def test_external_state_not_reseeded(self):
        g = generators.path(3)
        state = NetworkState(g.nodes())
        runner = PhaseRunner(g, state=state)
        assert runner.state.rumors(0) == frozenset()

    def test_rounds_accumulate_across_phases(self):
        g = generators.clique(6)
        runner = PhaseRunner(g)
        runner.run_phase(ldtg_factory(g, 1, run_tag="a"), latencies_known=True)
        first = runner.total_rounds
        runner.run_phase(ldtg_factory(g, 1, run_tag="b"), latencies_known=True)
        assert runner.total_rounds > first

    def test_exchange_and_message_counters(self):
        g = generators.clique(6)
        runner = PhaseRunner(g)
        runner.run_phase(ldtg_factory(g, 1), latencies_known=True)
        assert runner.total_exchanges > 0
        assert runner.total_messages == 2 * runner.total_exchanges

    def test_watch_records_first_completion(self):
        g = generators.path(4)
        target = set(g.nodes())
        runner = PhaseRunner(
            g,
            watch=lambda s: all(target <= s.rumors(v) for v in target),
        )
        assert runner.first_complete_round is None
        # A couple of tagged 1-DTG phases complete all-to-all on a path.
        for i in range(4):
            runner.run_phase(
                ldtg_factory(g, 1, run_tag=f"w{i}"), latencies_known=True
            )
        assert runner.first_complete_round is not None
        assert runner.first_complete_round <= runner.total_rounds

    def test_watch_true_at_start(self):
        g = generators.path(3)
        runner = PhaseRunner(g, watch=lambda s: True)
        assert runner.first_complete_round == 0

    def test_max_rounds_guard(self):
        g = generators.clique(8)
        runner = PhaseRunner(g)
        with pytest.raises(SimulationError):
            runner.run_phase(
                ldtg_factory(g, 1), latencies_known=True, max_rounds=2
            )

    def test_run_phase_returns_engine(self):
        g = generators.path(3)
        runner = PhaseRunner(g)
        engine = runner.run_phase(ldtg_factory(g, 1), latencies_known=True)
        assert engine.state is runner.state
        assert engine.all_done()
