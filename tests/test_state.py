"""Tests for NetworkState: rumor sets, note boards, snapshots, merges."""

from repro.sim.state import NetworkState, Note, Payload


def make_state():
    return NetworkState(nodes=[0, 1, 2])


class TestRumors:
    def test_starts_empty(self):
        state = make_state()
        assert state.rumors(0) == frozenset()

    def test_add_and_query(self):
        state = make_state()
        state.add_rumor(0, "r")
        assert state.knows(0, "r")
        assert not state.knows(1, "r")

    def test_seed_self_rumors(self):
        state = make_state()
        state.seed_self_rumors()
        for node in (0, 1, 2):
            assert state.knows(node, node)

    def test_count_knowing(self):
        state = make_state()
        state.add_rumor(0, "x")
        state.add_rumor(2, "x")
        assert state.count_knowing("x") == 2

    def test_rumors_returns_immutable_snapshot(self):
        state = make_state()
        state.add_rumor(0, "x")
        snap = state.rumors(0)
        state.add_rumor(0, "y")
        assert snap == frozenset({"x"})


class TestNotes:
    def test_publish_and_read_own(self):
        state = make_state()
        state.publish_note(0, flag=True)
        note = state.note_of(0, 0)
        assert note is not None
        assert note.get("flag") is True
        assert note.version == 1

    def test_version_bumps(self):
        state = make_state()
        state.publish_note(0, flag=False)
        state.publish_note(0, flag=True)
        assert state.note_of(0, 0).version == 2
        assert state.note_of(0, 0).get("flag") is True

    def test_note_get_default(self):
        note = Note(version=1, data=(("a", 1),))
        assert note.get("a") == 1
        assert note.get("missing", "d") == "d"

    def test_unknown_origin_is_none(self):
        state = make_state()
        assert state.note_of(0, 1) is None

    def test_known_note_origins(self):
        state = make_state()
        state.publish_note(1, x=1)
        assert state.known_note_origins(1) == [1]
        assert state.known_note_origins(0) == []

    def test_clear_notes(self):
        state = make_state()
        state.publish_note(0, x=1)
        state.clear_notes()
        assert state.note_of(0, 0) is None


class TestSnapshotMerge:
    def test_snapshot_contents(self):
        state = make_state()
        state.add_rumor(0, "r")
        state.publish_note(0, f=2)
        payload = state.snapshot(0)
        assert payload.rumors == frozenset({"r"})
        assert dict(payload.notes)[0].get("f") == 2

    def test_merge_rumors(self):
        state = make_state()
        state.add_rumor(0, "r")
        changed = state.merge(1, state.snapshot(0))
        assert changed
        assert state.knows(1, "r")

    def test_merge_no_change(self):
        state = make_state()
        state.add_rumor(0, "r")
        state.merge(1, state.snapshot(0))
        assert not state.merge(1, state.snapshot(0))

    def test_merge_notes_higher_version_wins(self):
        state = make_state()
        state.publish_note(0, value="old")
        old_snapshot = state.snapshot(0)
        state.publish_note(0, value="new")
        state.merge(1, state.snapshot(0))
        # Merging the stale snapshot must not regress node 1's view.
        state.merge(1, old_snapshot)
        assert state.note_of(1, 0).get("value") == "new"

    def test_merge_notes_propagate_transitively(self):
        state = make_state()
        state.publish_note(0, tag="hello")
        state.merge(1, state.snapshot(0))
        state.merge(2, state.snapshot(1))
        assert state.note_of(2, 0).get("tag") == "hello"

    def test_snapshot_is_immutable_view(self):
        state = make_state()
        state.add_rumor(0, "a")
        payload = state.snapshot(0)
        state.add_rumor(0, "b")
        assert payload.rumors == frozenset({"a"})

    def test_empty_payload_merge_is_noop(self):
        state = make_state()
        assert not state.merge(0, Payload(rumors=frozenset(), notes=()))
