"""Tests for trace analytics: queries, derived series, structural diff.

Traces are exercised both synthetically (hand-built records with known
answers) and end-to-end (a recorded push--pull run, where the derived
series must agree with the recorder's own counters and the run result).
"""

import pathlib
import random

import pytest

from repro.errors import ObservabilityError
from repro.graphs import generators
from repro.obs import CounterSink, MemorySink, Recorder
from repro.obs.traces import Trace, diff_traces, load_trace
from repro.protocols.push_pull import run_push_pull

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _initiate(round_, a, b, **extra):
    record = {
        "kind": "initiate", "round": round_, "initiator": a, "responder": b,
        "latency": 1, "lost": False, "ping": False,
    }
    record.update(extra)
    return record


def _deliver(round_, a, b, initiated_at, learned=1):
    return {
        "kind": "deliver", "round": round_, "initiator": a, "responder": b,
        "initiated_at": initiated_at, "ping": False, "initiator_alive": True,
        "learned_by_initiator": learned, "learned_by_responder": 0,
    }


def _recorded_run():
    graph = generators.ring_of_cliques(3, 4, inter_latency=5, rng=random.Random(0))
    memory = MemorySink()
    counters = CounterSink()
    with Recorder(memory, counters) as recorder:
        result = run_push_pull(graph, seed=1, recorder=recorder)
    return graph, result, Trace.from_events(memory.events), counters


class TestConstruction:
    def test_from_jsonl_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = '{"kind":"initiate","round":0}\n\n{"kind":"round","round":0}\n'
        path.write_text(lines, encoding="utf-8")
        trace = load_trace(path)
        assert len(trace) == 2  # blank lines skipped
        assert trace == Trace.from_jsonl(lines)

    def test_bad_json_raises_with_line_number(self):
        with pytest.raises(ObservabilityError, match="line 2"):
            Trace.from_jsonl('{"kind":"round","round":0}\nnot json\n')

    def test_non_event_record_raises(self):
        with pytest.raises(ObservabilityError, match="not an engine event"):
            Trace([{"kind": "round"}])  # no round field

    def test_load_golden_file(self):
        trace = Trace.load(GOLDEN_DIR / "push_pull_ring_of_cliques.jsonl")
        assert len(trace) > 0
        assert {"initiate", "deliver", "round"} <= set(trace.counts_by_kind())

    def test_sequence_protocol(self):
        trace = Trace([_initiate(0, 1, 2), _initiate(1, 2, 3)])
        assert len(trace) == 2
        assert trace[0]["round"] == 0
        assert isinstance(trace[0:1], Trace)
        assert [r["round"] for r in trace] == [0, 1]
        assert "2 events" in repr(trace)


class TestQueries:
    def test_filter_by_fields_and_predicate(self):
        trace = Trace([
            _initiate(0, 1, 2), _initiate(1, 1, 3), _deliver(1, 1, 2, 0),
        ])
        assert len(trace.filter(kind="initiate")) == 2
        assert len(trace.filter(kind="initiate", round=1)) == 1
        assert len(trace.filter(lambda r: r["round"] > 0)) == 2
        # missing fields never match
        assert len(trace.filter(initiated_at=0)) == 1

    def test_group_by(self):
        trace = Trace([_initiate(0, 1, 2), _initiate(0, 2, 3), _initiate(1, 1, 3)])
        groups = trace.group_by("initiator")
        assert sorted(groups) == [1, 2]
        assert len(groups[1]) == 2

    def test_derive(self):
        trace = Trace([_initiate(0, 1, 2), _initiate(3, 1, 2)])
        assert trace.derive(lambda r: r["round"] * 2) == [0, 6]


class TestDerivedSeries:
    def test_delivery_latencies(self):
        trace = Trace([_deliver(3, 1, 2, 1), _deliver(5, 2, 3, 5)])
        assert trace.delivery_latencies() == [2, 0]
        assert trace.delivery_latency_by_round() == {3: [2], 5: [0]}

    def test_blocked_initiation_rate(self):
        records = [
            _initiate(0, 1, 2),
            {"kind": "blocked", "round": 0, "initiator": 1, "responder": 2},
            {"kind": "blocked", "round": 1, "initiator": 1, "responder": 2},
            {"kind": "rejected", "round": 1, "initiator": 2, "responder": 3},
        ]
        assert Trace(records).blocked_initiation_rate() == pytest.approx(0.5)
        assert Trace([_initiate(0, 1, 2)]).blocked_initiation_rate() == 0.0

    def test_coverage_curve(self):
        trace = Trace([_deliver(0, 1, 2, 0, learned=2), _deliver(2, 2, 3, 1)])
        assert trace.coverage_curve() == [3, 3, 4]
        assert trace.coverage_curve(initial=5) == [7, 7, 8]

    def test_activated_edge_churn_deduplicates_undirected(self):
        trace = Trace([
            _initiate(0, 1, 2),
            _initiate(0, 2, 1),   # same undirected edge
            _initiate(2, 1, 3),
        ])
        assert trace.activated_edge_churn() == {0: 1, 2: 1}

    def test_stats_counts_phase_resets(self):
        trace = Trace([
            _initiate(0, 1, 2), _initiate(3, 1, 2),
            _initiate(0, 1, 2),  # round reset → second phase
        ])
        stats = trace.stats()
        assert stats["phases"] == 2
        assert stats["events"] == 3
        assert stats["max_round"] == 3

    def test_empty_trace(self):
        trace = Trace([])
        assert trace.max_round() == -1
        assert trace.coverage_curve() == []
        assert trace.stats()["phases"] == 0


class TestEndToEnd:
    def test_series_agree_with_recorder_counters(self):
        graph, result, trace, counters = _recorded_run()
        assert trace.counts_by_kind() == dict(sorted(counters.by_kind.items()))
        assert len(trace.delivery_latencies()) == counters.by_kind["deliver"]
        # a complete broadcast's coverage deltas sum to n - 1
        curve = trace.coverage_curve()
        assert curve[-1] == graph.num_nodes
        assert curve == sorted(curve)  # monotone
        assert trace.max_round() == result.rounds - 1
        assert trace.blocked_initiation_rate() == 0.0


class TestDiff:
    def test_identical_traces_diff_none(self):
        records = [_initiate(0, 1, 2), _deliver(1, 1, 2, 0)]
        assert diff_traces(Trace(records), Trace(records)) is None

    def test_first_divergence_pinpointed(self):
        a = Trace([_initiate(0, 1, 2), _deliver(1, 1, 2, 0)])
        b = Trace([_initiate(0, 1, 2), _deliver(2, 1, 2, 0)])
        diff = diff_traces(a, b)
        assert diff is not None
        assert diff.index == 1
        assert diff.round_a == 1 and diff.round_b == 2
        assert '"kind":"deliver"' in diff.a
        assert "diverge at event 1" in diff.describe()

    def test_prefix_divergence(self):
        a = Trace([_initiate(0, 1, 2)])
        b = Trace([_initiate(0, 1, 2), _deliver(1, 1, 2, 0)])
        diff = diff_traces(a, b)
        assert diff.index == 1
        assert diff.a is None and diff.b is not None
        assert diff.len_a == 1 and diff.len_b == 2
        assert "<ended after 1 events>" in diff.describe()

    def test_key_order_does_not_matter(self):
        record = _initiate(0, 1, 2)
        reordered = dict(reversed(list(record.items())))
        assert diff_traces(Trace([record]), Trace([reordered])) is None

    def test_seed_change_diverges_on_real_runs(self):
        graph = generators.ring_of_cliques(3, 4, inter_latency=5,
                                           rng=random.Random(0))
        traces = []
        for seed in (1, 2):
            memory = MemorySink()
            with Recorder(memory) as recorder:
                run_push_pull(graph, seed=seed, recorder=recorder)
            traces.append(Trace.from_events(memory.events))
        diff = diff_traces(*traces)
        assert diff is not None
