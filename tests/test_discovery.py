"""Tests for latency discovery and the unknown-latency pipeline (Section 4.2)."""

import random

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.base import PhaseRunner
from repro.protocols.discovery import (
    LatencyDiscoveryProtocol,
    run_general_eid_unknown_latencies,
    run_latency_discovery,
)


class TestLatencyDiscovery:
    def test_measures_all_fast_edges(self):
        g = LatencyGraph(edges=[(0, 1, 2), (1, 2, 4), (0, 2, 1)])
        measured = run_latency_discovery(g, window=5)
        assert measured[0][1] == 2
        assert measured[0][2] == 1
        assert measured[1][2] == 4

    def test_window_excludes_slow_edges(self):
        g = LatencyGraph(edges=[(0, 1, 2), (1, 2, 50)])
        measured = run_latency_discovery(g, window=5)
        assert measured[0][1] == 2
        assert 2 not in measured[1]

    def test_measurements_symmetric_enough(self):
        # Both endpoints probe, so both ends measure each fast edge.
        g = generators.grid(3, 3, latency_model=lambda u, v, r: 3)
        measured = run_latency_discovery(g, window=10)
        for u, v, latency in g.edges():
            assert measured[u][v] == latency
            assert measured[v][u] == latency

    def test_charged_rounds(self):
        g = generators.clique(6, latency_model=lambda u, v, r: 2)
        runner = PhaseRunner(g)
        run_latency_discovery(g, window=4, runner=runner)
        # Delta probe rounds + window wait.
        assert runner.total_rounds >= 5 + 4

    def test_rejects_bad_window(self):
        with pytest.raises(ProtocolError):
            LatencyDiscoveryProtocol(0)


class TestUnknownLatencyPipeline:
    def test_completes_grid(self):
        g = generators.grid(3, 3)
        report = run_general_eid_unknown_latencies(g, seed=0)
        assert report.first_complete_round is not None
        assert report.first_complete_round <= report.rounds

    def test_completes_with_latencies(self):
        g = generators.ring_of_cliques(3, 4, inter_latency=3, rng=random.Random(0))
        report = run_general_eid_unknown_latencies(g, seed=1)
        assert report.first_complete_round is not None

    def test_deterministic(self):
        g = generators.grid(3, 3)
        a = run_general_eid_unknown_latencies(g, seed=3)
        b = run_general_eid_unknown_latencies(g, seed=3)
        assert (a.rounds, a.final_estimate) == (b.rounds, b.final_estimate)

    def test_never_reads_latency_oracle(self):
        # The pipeline must work end to end with latencies_known=False
        # engines only; if any protocol peeked, ProtocolError would raise.
        g = generators.ring_of_cliques(3, 3, inter_latency=2, rng=random.Random(2))
        report = run_general_eid_unknown_latencies(g, seed=2)
        assert report.rounds > 0
