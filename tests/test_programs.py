"""Tests for the generator-based ProgramProtocol layer."""

import pytest

from repro.errors import ProtocolError
from repro.graphs.latency_graph import LatencyGraph
from repro.sim.engine import Engine
from repro.sim.programs import ProgramProtocol, contact, contact_and_wait, wait
from repro.sim.state import NetworkState


class Recorder(ProgramProtocol):
    """Runs a scripted program and records yields' results."""

    def __init__(self, script):
        super().__init__()
        self._script = script
        self.results = []
        self.finish_round = None

    def program(self, ctx):
        for command in self._script:
            result = yield command
            self.results.append((ctx.round, result))
        self.finish_round = ctx.round


class Passive(ProgramProtocol):
    def program(self, ctx):
        return
        yield  # pragma: no cover


def run_pair(script, latency=3, rounds=20):
    graph = LatencyGraph(edges=[(0, 1, latency)])
    protocols = {}

    def factory(node):
        protocols[node] = Recorder(script) if node == 0 else Passive()
        return protocols[node]

    engine = Engine(graph, factory)
    for _ in range(rounds):
        if engine.all_done():
            break
        engine.step()
    return engine, protocols[0]


class TestCommands:
    def test_wait_consumes_rounds(self):
        engine, recorder = run_pair([wait(4), wait(2)])
        # wait(4) issued at round 0 resumes at round 4; wait(2) resumes at 6.
        assert recorder.finish_round == 6

    def test_contact_is_nonblocking(self):
        engine, recorder = run_pair([contact(1), contact(1), contact(1)], latency=9)
        # One initiation per round: finishes after 3 rounds despite latency 9.
        assert recorder.finish_round == 3
        assert engine.metrics.exchanges == 3

    def test_contact_and_wait_blocks_until_delivery(self):
        engine, recorder = run_pair([contact_and_wait(1)], latency=5)
        round_resumed, delivery = recorder.results[0]
        assert round_resumed == 5
        assert delivery is not None
        assert delivery.measured_latency == 5

    def test_contact_and_wait_fixed_duration(self):
        engine, recorder = run_pair([contact_and_wait(1, rounds=7)], latency=3)
        round_resumed, delivery = recorder.results[0]
        assert round_resumed == 7  # waits the full 7, not just the latency
        assert delivery is not None  # the reply arrived inside the window
        assert delivery.measured_latency == 3

    def test_fixed_duration_shorter_than_latency_gives_none(self):
        engine, recorder = run_pair([contact_and_wait(1, rounds=2)], latency=5)
        round_resumed, delivery = recorder.results[0]
        assert round_resumed == 2
        assert delivery is None

    def test_validation(self):
        with pytest.raises(ProtocolError):
            wait(0)
        with pytest.raises(ProtocolError):
            contact_and_wait(1, rounds=0)

    def test_bad_yield_rejected(self):
        class Bad(ProgramProtocol):
            def program(self, ctx):
                yield "nonsense"

        graph = LatencyGraph(edges=[(0, 1, 1)])
        engine = Engine(graph, lambda v: Bad())
        with pytest.raises(ProtocolError):
            engine.step()


class TestLifecycle:
    def test_done_after_generator_returns(self):
        engine, recorder = run_pair([wait(1)])
        assert engine.all_done()

    def test_empty_program_done_immediately(self):
        graph = LatencyGraph(edges=[(0, 1, 1)])
        engine = Engine(graph, lambda v: Passive())
        engine.step()
        assert engine.all_done()

    def test_measured_latencies_recorded(self):
        engine, recorder = run_pair([contact_and_wait(1)], latency=4)
        assert recorder.measured_latencies == {1: 4}

    def test_measured_latency_keeps_minimum(self):
        engine, recorder = run_pair(
            [contact_and_wait(1), contact_and_wait(1)], latency=4
        )
        assert recorder.measured_latencies == {1: 4}

    def test_knowledge_flows_during_program(self):
        graph = LatencyGraph(edges=[(0, 1, 2)])
        state = NetworkState([0, 1])
        state.add_rumor(1, "secret")

        captured = {}

        class Asker(ProgramProtocol):
            def program(self, ctx):
                yield contact_and_wait(1)
                captured["knows"] = ctx.state.knows(0, "secret")

        def factory(node):
            return Asker() if node == 0 else Passive()

        engine = Engine(graph, factory, state=state)
        for _ in range(5):
            engine.step()
        assert captured["knows"] is True

    def test_sequential_contact_and_waits_interleave_correctly(self):
        graph = LatencyGraph(edges=[(0, 1, 2), (0, 2, 3)])

        class TwoStep(ProgramProtocol):
            def __init__(self):
                super().__init__()
                self.seen = []

            def program(self, ctx):
                d1 = yield contact_and_wait(1)
                self.seen.append((ctx.round, d1.peer))
                d2 = yield contact_and_wait(2)
                self.seen.append((ctx.round, d2.peer))

        protocols = {}

        def factory(node):
            protocols[node] = TwoStep() if node == 0 else Passive()
            return protocols[node]

        engine = Engine(graph, factory)
        for _ in range(10):
            engine.step()
        assert protocols[0].seen == [(2, 1), (5, 2)]
