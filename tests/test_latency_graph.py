"""Unit tests for the LatencyGraph substrate."""

import pytest

from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs.latency_graph import LatencyGraph, edge_key


def triangle() -> LatencyGraph:
    return LatencyGraph(edges=[(0, 1, 1), (1, 2, 2), (0, 2, 5)])


class TestConstruction:
    def test_empty_graph(self):
        g = LatencyGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.nodes() == []

    def test_add_node_idempotent(self):
        g = LatencyGraph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1

    def test_add_edge_creates_nodes(self):
        g = LatencyGraph()
        g.add_edge(1, 2, 3)
        assert g.has_node(1) and g.has_node(2)
        assert g.latency(1, 2) == 3
        assert g.latency(2, 1) == 3

    def test_add_edge_overwrites_latency(self):
        g = LatencyGraph()
        g.add_edge(1, 2, 3)
        g.add_edge(1, 2, 7)
        assert g.latency(1, 2) == 7
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = LatencyGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1, 1)

    def test_zero_latency_rejected(self):
        g = LatencyGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, 0)

    def test_negative_latency_rejected(self):
        g = LatencyGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, -4)

    def test_non_integer_latency_rejected(self):
        g = LatencyGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, 1.5)

    def test_bool_latency_rejected(self):
        g = LatencyGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, True)

    def test_constructor_with_nodes_and_edges(self):
        g = LatencyGraph(nodes=[9], edges=[(0, 1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 1

    def test_remove_edge(self):
        g = triangle()
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 2

    def test_remove_missing_edge_raises(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.remove_edge(0, 99)


class TestDenseIds:
    def test_index_round_trip(self):
        g = LatencyGraph(nodes=["c", "a", "b"])
        for i, node in enumerate(["c", "a", "b"]):
            assert g.index_of(node) == i
            assert g.node_at(i) == node

    def test_index_of_unknown_node_raises(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.index_of("missing")

    def test_canonical_edge_orders_by_dense_index(self):
        # Insertion order 10 then 2: dense order disagrees with value and
        # repr order, so canonicalization must follow the interned index.
        g = LatencyGraph()
        g.add_edge(10, 2, 1)
        assert g.canonical_edge(2, 10) == (10, 2)
        assert g.canonical_edge(10, 2) == (10, 2)

    def test_adjacency_arrays_match_adjacency(self):
        g = triangle()
        neighbors, latencies = g.adjacency_arrays()
        for node in g.nodes():
            i = g.index_of(node)
            got = {
                g.node_at(j): latency
                for j, latency in zip(neighbors[i], latencies[i])
            }
            assert got == g.neighbor_latencies(node)

    def test_adjacency_arrays_cache_invalidated_on_mutation(self):
        g = triangle()
        first = g.adjacency_arrays()
        again = g.adjacency_arrays()
        assert again[0] is first[0] and again[1] is first[1]  # cached
        g.add_edge(0, 3, 4)
        second = g.adjacency_arrays()
        assert second[0] is not first[0]
        i = g.index_of(0)
        assert g.index_of(3) in second[0][i]


class TestQueries:
    def test_counts(self):
        g = triangle()
        assert g.num_nodes == 3
        assert g.num_edges == 3

    def test_edges_iterates_each_once(self):
        g = triangle()
        edges = list(g.edges())
        assert len(edges) == 3
        keys = {edge_key(u, v) for u, v, _ in edges}
        assert keys == {(0, 1), (1, 2), (0, 2)}

    def test_neighbors(self):
        g = triangle()
        assert sorted(g.neighbors(1)) == [0, 2]

    def test_neighbor_latencies(self):
        g = triangle()
        assert g.neighbor_latencies(0) == {1: 1, 2: 5}

    def test_missing_node_raises(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.neighbors(42)

    def test_missing_edge_latency_raises(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        g.add_node(2)
        with pytest.raises(GraphError):
            g.latency(0, 2)

    def test_degrees(self):
        g = LatencyGraph(edges=[(0, 1, 1), (0, 2, 1), (0, 3, 1)])
        assert g.degree(0) == 3
        assert g.max_degree() == 3
        assert g.min_degree() == 1

    def test_degree_bounds_on_empty(self):
        g = LatencyGraph()
        assert g.max_degree() == 0
        assert g.min_degree() == 0

    def test_distinct_latencies_sorted(self):
        g = LatencyGraph(edges=[(0, 1, 5), (1, 2, 1), (2, 3, 5), (3, 4, 3)])
        assert g.distinct_latencies() == [1, 3, 5]
        assert g.max_latency() == 5

    def test_max_latency_edgeless(self):
        assert LatencyGraph(nodes=[1, 2]).max_latency() == 0


class TestVolumesAndCuts:
    def test_volume_is_degree_sum(self):
        g = triangle()
        assert g.volume([0]) == 2
        assert g.volume([0, 1]) == 4
        assert g.volume([0, 1, 2]) == 6

    def test_volume_deduplicates(self):
        g = triangle()
        assert g.volume([0, 0, 0]) == 2

    def test_cut_edges_all(self):
        g = triangle()
        cut = g.cut_edges([0])
        assert {(u, v) for u, v, _ in cut} == {(0, 1), (0, 2)}

    def test_cut_edges_latency_filtered(self):
        g = triangle()
        cut = g.cut_edges([0], max_latency=1)
        assert [(u, v, lat) for u, v, lat in cut] == [(0, 1, 1)]


class TestSubgraph:
    def test_subgraph_leq_keeps_all_nodes(self):
        g = triangle()
        sub = g.subgraph_leq(1)
        assert sub.num_nodes == 3
        assert sub.num_edges == 1
        assert sub.has_edge(0, 1)

    def test_subgraph_leq_full(self):
        g = triangle()
        assert g.subgraph_leq(5) == g


class TestDistances:
    def test_weighted_distance_takes_shortcut(self):
        g = triangle()
        # 0 -> 1 -> 2 costs 3, direct 0 -> 2 costs 5.
        assert g.weighted_distance(0, 2) == 3

    def test_weighted_distances_source(self):
        g = triangle()
        assert g.weighted_distances(0) == {0: 0, 1: 1, 2: 3}

    def test_unreachable_raises(self):
        g = LatencyGraph(nodes=[0, 1])
        with pytest.raises(DisconnectedGraphError):
            g.weighted_distance(0, 1)

    def test_weighted_diameter_path(self):
        g = LatencyGraph(edges=[(0, 1, 2), (1, 2, 3), (2, 3, 4)])
        assert g.weighted_diameter() == 9

    def test_weighted_diameter_disconnected_raises(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        g.add_node(2)
        with pytest.raises(DisconnectedGraphError):
            g.weighted_diameter()

    def test_sampled_diameter_requires_rng(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.weighted_diameter(sample_sources=1)

    def test_sampled_diameter_lower_bounds_exact(self):
        import random

        g = LatencyGraph(edges=[(i, i + 1, 2) for i in range(9)])
        exact = g.weighted_diameter()
        sampled = g.weighted_diameter(sample_sources=3, rng=random.Random(0))
        assert sampled <= exact
        assert sampled >= exact / 2

    def test_hop_distances(self):
        g = triangle()
        assert g.hop_distances(0) == {0: 0, 1: 1, 2: 1}

    def test_hop_diameter_ignores_latency(self):
        g = LatencyGraph(edges=[(0, 1, 100), (1, 2, 100)])
        assert g.hop_diameter() == 2

    def test_is_connected(self):
        g = triangle()
        assert g.is_connected()
        g.add_node(99)
        assert not g.is_connected()
        assert LatencyGraph().is_connected()

    def test_eccentricity(self):
        g = LatencyGraph(edges=[(0, 1, 2), (1, 2, 3)])
        assert g.weighted_eccentricity(1) == 3
        assert g.weighted_eccentricity(0) == 5


class TestConversions:
    def test_copy_is_independent(self):
        g = triangle()
        clone = g.copy()
        assert clone == g
        clone.add_edge(0, 3, 1)
        assert clone != g

    def test_relabeled(self):
        g = triangle()
        relabeled = g.relabeled({0: "x", 1: "y"})
        assert relabeled.has_edge("x", "y")
        assert relabeled.latency("x", 2) == 5

    def test_relabeled_rejects_collision(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.relabeled({0: "x", 1: "x"})

    def test_networkx_roundtrip(self):
        g = triangle()
        back = LatencyGraph.from_networkx(g.to_networkx())
        assert back == g

    def test_from_networkx_default_latency(self):
        import networkx as nx

        nxg = nx.path_graph(3)
        g = LatencyGraph.from_networkx(nxg, default=4)
        assert g.latency(0, 1) == 4

    def test_repr(self):
        assert repr(triangle()) == "LatencyGraph(n=3, m=3)"

    def test_eq_non_graph(self):
        assert triangle() != "not a graph"


class TestEdgeKey:
    def test_orders_comparable(self):
        assert edge_key(2, 1) == (1, 2)
        assert edge_key(1, 2) == (1, 2)

    def test_orders_mixed_types(self):
        a, b = edge_key("x", 1), edge_key(1, "x")
        assert a == b
