"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListAndGame:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for eid in ("E1", "E8", "E17"):
            assert eid in out

    def test_game_singleton(self, capsys):
        assert main(["game", "--m", "8", "--strategy", "sweep", "--seeds", "3"]) == 0
        assert "Guessing" in capsys.readouterr().out

    def test_game_random_predicate(self, capsys):
        code = main(
            ["game", "--m", "8", "--predicate", "random", "--p", "0.4",
             "--strategy", "adaptive", "--seeds", "2"]
        )
        assert code == 0
        assert "p=0.4" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_clique(self, capsys):
        assert main(["analyze", "--topology", "clique", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "weighted conductance" in out
        assert "ℓ* = 1" in out

    def test_analyze_with_latency_range(self, capsys):
        code = main(
            ["analyze", "--topology", "cycle", "--n", "8",
             "--latency-range", "2", "5", "--method", "exact"]
        )
        assert code == 0
        assert "weighted diameter" in capsys.readouterr().out

    def test_analyze_datacenter(self, capsys):
        code = main(
            ["analyze", "--topology", "datacenter", "--racks", "3",
             "--rack-size", "4", "--inter-latency", "7", "--method", "sweep"]
        )
        assert code == 0


class TestSimulate:
    def test_push_pull_with_curve(self, capsys):
        code = main(
            ["simulate", "--protocol", "push-pull", "--topology", "clique",
             "--n", "16", "--curve"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "push-pull[broadcast]" in out
        assert "informed:" in out

    def test_flooding_push_only(self, capsys):
        code = main(
            ["simulate", "--protocol", "flooding", "--topology", "star",
             "--n", "10", "--push-only"]
        )
        assert code == 0
        assert "flooding[push-only]" in capsys.readouterr().out

    def test_general_eid(self, capsys):
        code = main(
            ["simulate", "--protocol", "general-eid", "--topology", "grid",
             "--rows", "3", "--cols", "3"]
        )
        assert code == 0
        assert "general-eid" in capsys.readouterr().out

    def test_path_discovery(self, capsys):
        code = main(
            ["simulate", "--protocol", "path-discovery", "--topology", "path",
             "--n", "6"]
        )
        assert code == 0
        assert "path-discovery" in capsys.readouterr().out

    def test_unified(self, capsys):
        code = main(
            ["simulate", "--protocol", "unified", "--topology", "clique",
             "--n", "12"]
        )
        assert code == 0
        assert "winner" in capsys.readouterr().out

    def test_bimodal_latency_model(self, capsys):
        code = main(
            ["simulate", "--protocol", "push-pull", "--topology",
             "random-regular", "--n", "16", "--degree", "4",
             "--bimodal", "1", "20", "0.5"]
        )
        assert code == 0

    def test_unknown_topology_is_parse_error(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--topology", "moebius"])

    def test_library_error_returns_code_2(self, capsys):
        # cycle needs n >= 3: GraphError surfaces as exit code 2.
        code = main(["analyze", "--topology", "cycle", "--n", "2"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestGraphFiles:
    def test_save_and_load_json(self, tmp_path, capsys):
        path = tmp_path / "graph.json"
        assert main(
            ["analyze", "--topology", "clique", "--n", "6",
             "--save-graph", str(path)]
        ) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["analyze", "--load-graph", str(path)]) == 0
        out = capsys.readouterr().out
        assert "nodes                 : 6" in out

    def test_save_and_load_edge_list(self, tmp_path, capsys):
        path = tmp_path / "graph.edges"
        assert main(
            ["analyze", "--topology", "path", "--n", "4",
             "--save-graph", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["simulate", "--protocol", "flooding", "--load-graph", str(path)]
        ) == 0
        assert "flooding" in capsys.readouterr().out

    def test_load_missing_file_errors(self, capsys):
        code = main(["analyze", "--load-graph", "/nonexistent/graph.json"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCheck:
    def test_check_passes_without_experiments(self, capsys):
        assert main(["check", "--experiments", "none"]) == 0
        out = capsys.readouterr().out
        assert "differential push-pull" in out
        assert "replay determinism" in out
        assert "check passed" in out

    def test_check_with_one_experiment(self, capsys):
        assert main(["check", "--experiments", "E6", "--profile", "quick"]) == 0
        assert "checked experiment E6 [quick]" in capsys.readouterr().out

    def test_run_experiment_checked_flag(self, capsys):
        assert main(["run-experiment", "E6", "--checked"]) == 0
        assert "E6" in capsys.readouterr().out


class _FakeDifferentialReport:
    """Stand-in for a DifferentialReport (duck-typed by _cmd_check)."""

    def __init__(self, equivalent, rounds=7, mismatches=()):
        self.equivalent = equivalent
        self.rounds = rounds
        self.mismatches = list(mismatches)


class _FakeReplayReport:
    rounds = 7
    events = ()


class _FakeEIDReport:
    rounds = 5


def _stub_check_internals(monkeypatch, *, diff_ok=True, replay_ok=True):
    """Make the expensive check oracles instant (and optionally failing)."""
    import repro.protocols.eid as eid
    import repro.testing as testing

    diff = _FakeDifferentialReport(
        diff_ok, mismatches=() if diff_ok else ["rumor sets diverge at round 3"]
    )
    monkeypatch.setattr(testing, "run_differential", lambda *a, **k: diff)
    # Same object from both engine factories => fast == slow always holds.
    shared_eid = _FakeEIDReport()
    monkeypatch.setattr(eid, "run_general_eid", lambda *a, **k: shared_eid)
    if replay_ok:
        monkeypatch.setattr(
            testing, "record_and_replay", lambda *a, **k: _FakeReplayReport()
        )
    else:
        from repro.errors import SimulationError

        def diverge(*a, **k):
            raise SimulationError("replay diverged at round 9")

        monkeypatch.setattr(testing, "record_and_replay", diverge)


class TestCheckFailureBranches:
    def test_differential_mismatch_fails_check(self, capsys, monkeypatch):
        _stub_check_internals(monkeypatch, diff_ok=False)
        assert main(["check", "--experiments", "none"]) == 1
        captured = capsys.readouterr()
        assert "FAIL differential push-pull" in captured.out
        assert "check FAILED" in captured.err
        assert "rumor sets diverge at round 3" in captured.err

    def test_replay_divergence_fails_check(self, capsys, monkeypatch):
        _stub_check_internals(monkeypatch, replay_ok=False)
        assert main(["check", "--experiments", "none"]) == 1
        captured = capsys.readouterr()
        assert "FAIL replay determinism" in captured.out
        assert "replay determinism: replay diverged at round 9" in captured.err

    def test_checked_experiment_failure_fails_check(self, capsys, monkeypatch):
        _stub_check_internals(monkeypatch)
        import repro.experiments as experiments
        from repro.errors import SimulationError

        def explode(*a, **k):
            raise SimulationError("invariant violated: crashed node spoke")

        monkeypatch.setattr(experiments, "run_experiment", explode)
        assert main(["check", "--experiments", "E6"]) == 1
        captured = capsys.readouterr()
        assert "FAIL checked experiment E6 [quick]" in captured.out
        assert "invariant violated: crashed node spoke" in captured.err

    def test_stubbed_check_still_passes_clean(self, capsys, monkeypatch):
        _stub_check_internals(monkeypatch)
        assert main(["check", "--experiments", "none"]) == 0
        assert "check passed" in capsys.readouterr().out


class TestTrace:
    def test_trace_push_pull_prints_events_and_counters(self, capsys):
        code = main(
            ["trace", "--topology", "clique", "--n", "6", "--seed", "3",
             "--limit", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        # The first lines are canonical JSON events.
        import json as _json

        first = _json.loads(lines[0])
        assert first["kind"] in {"initiate", "deliver", "round"}
        assert "... (" in out  # truncation marker past --limit
        assert "events: " in out
        assert "rumors learned: 5" in out
        assert "push-pull[broadcast]" in out

    def test_trace_writes_jsonl_stream(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main(
            ["trace", "--topology", "cycle", "--n", "5", "--seed", "1",
             "--limit", "0", "--jsonl", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"to {path}" in out
        written = path.read_text().splitlines()
        assert written  # full stream regardless of --limit
        import json as _json

        assert all(_json.loads(line)["round"] >= 0 for line in written)

    def test_trace_path_discovery(self, capsys):
        code = main(
            ["trace", "--protocol", "path-discovery", "--topology", "clique",
             "--n", "4", "--limit", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "path-discovery: complete at" in out
        assert "phases" in out


class TestProfile:
    def test_profile_prints_span_table_and_manifest(self, capsys):
        assert main(["profile", "E6"]) == 0
        out = capsys.readouterr().out
        assert "experiment.E6" in out
        assert "harness.trial" in out
        assert "mean ms" in out
        assert "manifest: " in out
        assert "repro_jobs=" in out


class TestVectorBackendCLI:
    """--backend plumbing: check legs, simulate runs, eligibility errors."""

    def test_check_vector_backend_stubbed_passes(self, capsys, monkeypatch):
        _stub_check_internals(monkeypatch)
        assert main(["check", "--backend", "vector", "--experiments", "none"]) == 0
        out = capsys.readouterr().out
        assert "(vector vs reference)" in out
        assert "(vector vs scalar)" in out
        assert "general-eid on ring-of-cliques (vector vs scalar)" in out
        assert "skip differential" not in out
        assert "check passed" in out

    def test_check_vector_backend_mismatch_fails(self, capsys, monkeypatch):
        _stub_check_internals(monkeypatch, diff_ok=False)
        assert main(["check", "--backend", "vector", "--experiments", "none"]) == 1
        captured = capsys.readouterr()
        assert "FAIL differential push-pull" in captured.out
        assert "(vector vs reference)" in captured.out
        assert "check FAILED" in captured.err

    def test_backend_flag_accepted_before_subcommand(self, capsys, monkeypatch):
        _stub_check_internals(monkeypatch)
        assert main(["--backend", "vector", "check", "--experiments", "none"]) == 0
        assert "(vector vs scalar)" in capsys.readouterr().out

    def test_scalar_check_has_no_vector_legs(self, capsys, monkeypatch):
        _stub_check_internals(monkeypatch)
        assert main(["check", "--experiments", "none"]) == 0
        out = capsys.readouterr().out
        assert "(scalar vs reference)" in out
        assert "vs scalar)" not in out
        assert "skip differential" not in out

    def test_simulate_vector_matches_scalar_output(self, capsys):
        args = ["simulate", "--protocol", "push-pull", "--topology", "clique",
                "--n", "16"]
        assert main(args) == 0
        scalar_out = capsys.readouterr().out
        assert main(args + ["--backend", "vector"]) == 0
        vector_out = capsys.readouterr().out
        assert "push-pull[broadcast]" in vector_out
        assert vector_out == scalar_out

    def test_simulate_vector_runs_composite_protocol(self, capsys):
        # Composite algorithms dispatch per phase on the vector backend
        # (PR 8); general-eid must run — and match the scalar output.
        args = ["simulate", "--protocol", "general-eid", "--topology",
                "grid", "--rows", "3", "--cols", "3"]
        assert main(args) == 0
        scalar_out = capsys.readouterr().out
        assert main(args + ["--backend", "vector"]) == 0
        assert capsys.readouterr().out == scalar_out

    def test_ineligibility_message_pins_genuinely_ineligible_only(self):
        # The "not vector-backend eligible" diagnostic now fires only for
        # protocols that truly cannot run vectorized (adaptive/ping-only),
        # never for composite algorithms, which dispatch per phase.
        from repro.protocols.dtg import LDTGProtocol
        from repro.protocols.push_pull import PushPullProtocol
        from repro.sim.vector import vector_ineligibility

        reason = vector_ineligibility(LDTGProtocol(2))
        assert reason == (
            "protocol LDTGProtocol is not vector-backend eligible: it "
            "declares no vector_program() (only oblivious protocols can "
            "run on the vector backend; see docs/MODEL.md §8)"
        )
        import random

        assert vector_ineligibility(PushPullProtocol(random.Random(0))) is None

    def test_unknown_backend_is_parse_error(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--protocol", "push-pull", "--topology",
                  "clique", "--n", "8", "--backend", "quantum"])

    def test_regress_engine_vector_suite(self, tmp_path, capsys, monkeypatch):
        import json

        import repro.benchmarking as benchmarking

        report = tmp_path / "BENCH_engine_vector.json"
        base = tmp_path / "BENCH_engine_vector_baseline.json"
        base.write_text(
            json.dumps({"workloads": {"w": {"seconds": 1.0}}}), "utf-8"
        )
        report.write_text(
            json.dumps({"workloads": {"w": {"seconds": 0.5}}}), "utf-8"
        )
        monkeypatch.setattr(benchmarking, "BENCH_ENGINE_VECTOR_PATH", report)
        monkeypatch.setattr(
            benchmarking, "ENGINE_VECTOR_BASELINE_PATH", base
        )
        assert main(["regress", "--suite", "engine_vector"]) == 0
        assert "regression gate [engine_vector]: OK" in capsys.readouterr().out

    def test_regress_engine_vector_fails_on_slowdown(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        import repro.benchmarking as benchmarking

        report = tmp_path / "BENCH_engine_vector.json"
        base = tmp_path / "BENCH_engine_vector_baseline.json"
        base.write_text(
            json.dumps({"workloads": {"w": {"seconds": 1.0}}}), "utf-8"
        )
        report.write_text(
            json.dumps({"workloads": {"w": {"seconds": 3.0}}}), "utf-8"
        )
        monkeypatch.setattr(benchmarking, "BENCH_ENGINE_VECTOR_PATH", report)
        monkeypatch.setattr(
            benchmarking, "ENGINE_VECTOR_BASELINE_PATH", base
        )
        assert main(["regress", "--suite", "engine_vector"]) == 1
        assert "REGRESSED" in capsys.readouterr().out
