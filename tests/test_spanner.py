"""Tests for the directed Baswana--Sen spanner (Appendix D / Lemma 13)."""

import math
import random

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.graphs.latency_models import uniform_latency
from repro.protocols.spanner import DirectedSpanner, baswana_sen_spanner


def build(n=40, degree=8, seed=0, k=None):
    graph = generators.random_regular(
        n, degree, latency_model=uniform_latency(1, 9), rng=random.Random(seed)
    )
    k = k if k is not None else max(2, math.ceil(math.log2(n)))
    return graph, baswana_sen_spanner(graph, k, random.Random(seed + 1))


class TestConstruction:
    def test_spanner_is_subgraph(self):
        graph, spanner = build()
        for u, v in spanner.undirected_edges():
            assert graph.has_edge(u, v)

    def test_spans_all_nodes(self):
        graph, spanner = build()
        assert spanner.to_latency_graph().is_connected()

    def test_stretch_within_2k_minus_1(self):
        for seed in range(3):
            graph, spanner = build(seed=seed)
            stretch = spanner.measured_stretch(
                num_pairs=100, rng=random.Random(seed)
            )
            assert stretch <= 2 * spanner.k - 1

    def test_k1_returns_whole_graph(self):
        graph = generators.clique(8, latency_model=uniform_latency(1, 5))
        spanner = baswana_sen_spanner(graph, 1, random.Random(0))
        assert spanner.undirected_edges() == {
            (min(u, v), max(u, v)) for u, v, _ in graph.edges()
        }
        assert spanner.measured_stretch() == 1.0

    def test_sparsifies_dense_graphs(self):
        graph = generators.clique(40, latency_model=uniform_latency(1, 9))
        k = 5
        spanner = baswana_sen_spanner(graph, k, random.Random(0))
        assert spanner.num_edges < graph.num_edges / 2

    def test_deterministic_given_seed(self):
        graph, a = build(seed=7)
        b = baswana_sen_spanner(graph, a.k, random.Random(8))
        assert a.undirected_edges() == b.undirected_edges()
        assert a.out_edges == b.out_edges

    def test_rejects_bad_k(self):
        graph, _ = build()
        with pytest.raises(ProtocolError):
            baswana_sen_spanner(graph, 0, random.Random(0))

    def test_rejects_small_n_hat(self):
        graph, _ = build()
        with pytest.raises(ProtocolError):
            baswana_sen_spanner(graph, 3, random.Random(0), n_hat=5)

    def test_tree_input_returns_tree(self):
        tree = generators.binary_tree(15)
        spanner = baswana_sen_spanner(tree, 4, random.Random(0))
        # A tree cannot be sparsified: every edge must survive.
        assert spanner.num_edges == 14


class TestOrientation:
    def test_out_degree_small(self):
        graph, spanner = build(n=64)
        assert spanner.max_out_degree() <= 4 * math.ceil(math.log2(64))

    def test_out_edges_point_to_neighbors(self):
        graph, spanner = build()
        for tail, heads in spanner.out_edges.items():
            for head in heads:
                assert graph.has_edge(tail, head)

    def test_n_hat_estimate_increases_out_degree_bound(self):
        # Lemma 13: sampling with n̂ = n^c keeps things valid, just fatter.
        graph, tight = build(n=64)
        loose = baswana_sen_spanner(graph, tight.k, random.Random(1), n_hat=64**2)
        assert loose.to_latency_graph().is_connected()
        assert (
            loose.measured_stretch(num_pairs=30, rng=random.Random(2))
            <= 2 * loose.k - 1
        )


class TestDirectedSpannerHelpers:
    def test_restrict_filters_by_latency(self):
        graph = LatencyGraph(edges=[(0, 1, 2), (1, 2, 8)])
        spanner = DirectedSpanner(
            graph=graph, out_edges={0: [1], 1: [2], 2: []}, k=2
        )
        restricted = spanner.restrict(3)
        assert restricted.out_edges[0] == [1]
        assert restricted.out_edges[1] == []

    def test_max_out_degree_empty(self):
        spanner = DirectedSpanner(graph=LatencyGraph(), out_edges={}, k=2)
        assert spanner.max_out_degree() == 0

    def test_to_latency_graph_preserves_latencies(self):
        graph = LatencyGraph(edges=[(0, 1, 7)])
        spanner = DirectedSpanner(graph=graph, out_edges={0: [1], 1: []}, k=1)
        assert spanner.to_latency_graph().latency(0, 1) == 7

    def test_measured_stretch_infinite_when_disconnected(self):
        graph = LatencyGraph(edges=[(0, 1, 1), (1, 2, 1)])
        spanner = DirectedSpanner(
            graph=graph, out_edges={0: [1], 1: [], 2: []}, k=2
        )
        assert spanner.measured_stretch() == math.inf

    def test_num_edges_deduplicates_orientations(self):
        graph = LatencyGraph(edges=[(0, 1, 1)])
        spanner = DirectedSpanner(graph=graph, out_edges={0: [1], 1: [0]}, k=1)
        assert spanner.num_edges == 1
