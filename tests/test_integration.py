"""Cross-protocol integration tests.

Every all-to-all algorithm in the library must arrive at the same final
knowledge on the same graph; every broadcast algorithm must deliver the
same single rumor.  These tests run the whole protocol zoo side by side on
shared topologies and check the end states agree — the strongest cheap
consistency check the library has.
"""

import random

import pytest

from repro.graphs import generators
from repro.protocols.base import PhaseRunner
from repro.protocols.discovery import run_general_eid_unknown_latencies
from repro.protocols.eid import run_eid, run_general_eid
from repro.protocols.flooding import run_flooding
from repro.protocols.path_discovery import run_path_discovery, run_t_sequence
from repro.protocols.push_pull import run_push_pull
from repro.sim.state import NetworkState


GRAPHS = {
    "grid": lambda: generators.grid(3, 4),
    "weighted-ring": lambda: generators.ring_of_cliques(
        3, 4, inter_latency=3, rng=random.Random(0)
    ),
    "star": lambda: generators.star(10),
    "weighted-cycle": lambda: generators.cycle(
        8, latency_model=lambda u, v, r: r.randint(1, 4), rng=random.Random(1)
    ),
}


def node_knowledge(graph, state):
    universe = set(graph.nodes())
    return {node: state.rumors(node) & universe for node in graph.nodes()}


@pytest.mark.parametrize("name", sorted(GRAPHS))
class TestAllToAllAgreement:
    def test_every_backend_reaches_full_knowledge(self, name):
        graph = GRAPHS[name]()
        everyone = frozenset(graph.nodes())

        # push--pull
        result = run_push_pull(graph, mode="all_to_all", seed=1)
        assert result.complete

        # EID with the true diameter
        runner = PhaseRunner(graph)
        run_eid(graph, graph.weighted_diameter(), seed=1, runner=runner)
        assert all(
            everyone <= runner.state.rumors(v) for v in graph.nodes()
        ), "EID left gaps"

        # General EID (unknown diameter)
        geid = run_general_eid(graph, seed=1)
        assert geid.first_complete_round is not None

        # Path Discovery (no global knowledge)
        pd = run_path_discovery(graph)
        assert pd.first_complete_round is not None

        # Unknown latencies
        unk = run_general_eid_unknown_latencies(graph, seed=1)
        assert unk.first_complete_round is not None

    def test_t_sequence_matches_eid_knowledge(self, name):
        graph = GRAPHS[name]()
        diameter = graph.weighted_diameter()
        k = 1 << max(0, (diameter - 1).bit_length())

        t_runner = PhaseRunner(graph)
        run_t_sequence(t_runner, graph, k, tag="cmp")

        eid_runner = PhaseRunner(graph)
        run_eid(graph, diameter, seed=2, runner=eid_runner)

        assert node_knowledge(graph, t_runner.state) == node_knowledge(
            graph, eid_runner.state
        )


class TestBroadcastAgreement:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_flooding_and_push_pull_deliver_same_rumor(self, name):
        graph = GRAPHS[name]()
        flood = run_flooding(graph, source=graph.nodes()[0])
        gossip = run_push_pull(graph, source=graph.nodes()[0], seed=3)
        assert flood.complete and gossip.complete

    def test_broadcast_not_slower_than_diameter_floor(self):
        # No protocol can beat the weighted eccentricity of the source.
        graph = generators.ring_of_cliques(4, 4, inter_latency=6)
        source = graph.nodes()[0]
        floor = max(graph.weighted_distances(source).values())
        for result in (
            run_flooding(graph, source=source),
            run_push_pull(graph, source=source, seed=4),
        ):
            assert result.rounds >= floor


class TestProtocolCostOrdering:
    def test_self_termination_costs_more_than_completion(self):
        # Knowing you are done is what EID pays for: its termination round
        # is never before its completion round, on every graph.
        for name in sorted(GRAPHS):
            graph = GRAPHS[name]()
            report = run_general_eid(graph, seed=5)
            assert report.first_complete_round <= report.rounds

    def test_all_to_all_dominates_broadcast(self):
        graph = generators.grid(3, 3)
        broadcast = run_push_pull(graph, source=0, seed=6)
        all_to_all = run_push_pull(graph, mode="all_to_all", seed=6)
        assert all_to_all.rounds >= broadcast.rounds

    def test_exchanges_scale_with_rounds(self):
        graph = generators.clique(12)
        result = run_push_pull(graph, source=0, seed=7)
        # Every node initiates once per round on a clique.
        assert result.exchanges == 12 * result.rounds
