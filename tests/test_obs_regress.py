"""Tests for the perf-regression gate (``repro.obs.regress``).

The acceptance pair from the issue: an **injected 2x slowdown** must
flag, and the **committed real baselines** must pass — the gate is a
tripwire, not a noise machine.
"""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.regress import (
    DEFAULT_NOISE_FLOOR,
    DEFAULT_THRESHOLD,
    GATE_SUITES,
    compare_benchmarks,
    gate_suite,
    gate_suites,
)


def _report(**seconds):
    return {"workloads": {name: {"seconds": s} for name, s in seconds.items()}}


class TestCompareBenchmarks:
    def test_injected_2x_slowdown_flags(self):
        baseline = _report(fast=2.0, steady=1.0)
        current = _report(fast=4.0, steady=1.0)  # 2x on 'fast'
        report = compare_benchmarks(current, baseline, suite="demo")
        assert report.regressed
        assert report.verdict == "regressed"
        by_name = {v.name: v for v in report.workloads}
        assert by_name["fast"].status == "regressed"
        assert by_name["fast"].failed
        assert by_name["fast"].ratio == pytest.approx(2.0)
        assert by_name["steady"].status == "ok"
        assert not by_name["steady"].failed

    def test_within_threshold_passes(self):
        report = compare_benchmarks(
            _report(w=1.2), _report(w=1.0), threshold=1.25
        )
        assert not report.regressed
        assert report.workloads[0].budget_seconds == pytest.approx(1.25)

    def test_noise_floor_suppresses_millisecond_jitter(self):
        # 3x ratio, but the absolute delta (4 ms) is under the 50 ms floor.
        report = compare_benchmarks(_report(tiny=0.006), _report(tiny=0.002))
        assert not report.regressed
        assert report.workloads[0].status == "ok"
        # with the floor removed the same numbers flag
        report = compare_benchmarks(
            _report(tiny=0.006), _report(tiny=0.002), noise_floor=0.0
        )
        assert report.regressed

    def test_budget_is_max_of_relative_and_absolute(self):
        # baseline 1.0s: budget = max(1.25, 1.05) = 1.25
        report = compare_benchmarks(_report(w=1.3), _report(w=1.0))
        assert report.regressed
        # baseline 0.1s: budget = max(0.125, 0.15) = 0.15
        report = compare_benchmarks(_report(w=0.14), _report(w=0.1))
        assert not report.regressed

    def test_new_workload_never_fails(self):
        report = compare_benchmarks(_report(brand_new=99.0), _report())
        assert not report.regressed
        verdict = report.workloads[0]
        assert verdict.status == "new"
        assert not verdict.failed
        assert verdict.baseline_seconds is None

    def test_missing_workload_fails_only_under_strict(self):
        baseline = _report(dropped=1.0)
        lenient = compare_benchmarks(_report(), baseline)
        assert not lenient.regressed
        assert lenient.workloads[0].status == "missing"
        strict = compare_benchmarks(_report(), baseline, strict=True)
        assert strict.regressed
        assert strict.workloads[0].failed

    def test_per_workload_threshold_override(self):
        current, baseline = _report(noisy=1.8), _report(noisy=1.0)
        assert compare_benchmarks(current, baseline).regressed
        report = compare_benchmarks(
            current, baseline, per_workload_thresholds={"noisy": 2.0}
        )
        assert not report.regressed

    def test_invalid_parameters_raise(self):
        with pytest.raises(ObservabilityError, match="threshold"):
            compare_benchmarks(_report(), _report(), threshold=0)
        with pytest.raises(ObservabilityError, match="noise_floor"):
            compare_benchmarks(_report(), _report(), noise_floor=-1)

    def test_malformed_report_raises(self):
        with pytest.raises(ObservabilityError, match="workloads"):
            compare_benchmarks({}, _report())
        with pytest.raises(ObservabilityError, match="workloads"):
            compare_benchmarks(_report(), {"workloads": []})

    def test_zero_baseline_is_infinite_ratio(self):
        report = compare_benchmarks(_report(w=1.0), _report(w=0.0))
        assert report.workloads[0].ratio == float("inf")
        assert report.regressed


class TestReportShape:
    def test_to_dict_schema(self):
        report = compare_benchmarks(
            _report(b=4.0, a=1.0), _report(b=2.0, a=1.0), suite="demo"
        )
        payload = report.to_dict()
        assert payload["schema"] == "repro-regression-gate/1"
        assert payload["suite"] == "demo"
        assert payload["verdict"] == "regressed"
        assert payload["threshold"] == DEFAULT_THRESHOLD
        assert payload["noise_floor_seconds"] == DEFAULT_NOISE_FLOOR
        names = [w["name"] for w in payload["workloads"]]
        assert names == sorted(names)
        assert json.dumps(payload)  # JSON-serializable end to end

    def test_summary_text_failures_first(self):
        report = compare_benchmarks(
            _report(alpha=1.0, zeta=4.0), _report(alpha=1.0, zeta=2.0),
            suite="demo",
        )
        summary = report.summary()
        lines = summary.splitlines()
        assert lines[0].startswith("regression gate [demo]: REGRESSED")
        assert lines[1].startswith("  FAIL zeta")
        assert "2.00x" in lines[1]
        assert lines[2].startswith("  ok   alpha")

    def test_summary_mentions_new_and_missing(self):
        report = compare_benchmarks(
            _report(fresh=1.0), _report(gone=1.0), suite="s"
        )
        summary = report.summary()
        assert "fresh: new workload (no baseline)" in summary
        assert "gone: in baseline but not measured" in summary


class TestFileGates:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_gate_suite_with_injected_slowdown_fixture(self, tmp_path):
        report_path = self._write(
            tmp_path, "BENCH_demo.json", _report(workload=2.0)
        )
        baseline_path = self._write(
            tmp_path, "BENCH_demo_baseline.json", _report(workload=1.0)
        )
        report = gate_suite(
            "engine", report_path=report_path, baseline_path=baseline_path
        )
        assert report.regressed
        assert report.suite == "engine"

    def test_gate_suite_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="does not exist"):
            gate_suite(
                "engine",
                report_path=tmp_path / "nope.json",
                baseline_path=tmp_path / "nope2.json",
            )

    def test_gate_suite_invalid_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{", encoding="utf-8")
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            gate_suite("engine", report_path=bad, baseline_path=bad)

    def test_unknown_suite_raises(self):
        with pytest.raises(ObservabilityError, match="unknown gate suite"):
            gate_suite("no-such-suite")

    def test_committed_baselines_pass(self):
        # The acceptance criterion: the real BENCH_*.json in the repo must
        # clear the gate against their committed baselines.
        reports = gate_suites(skip_missing=True)
        assert reports, "no committed benchmark reports found"
        for report in reports:
            assert not report.regressed, report.summary()
            assert report.suite in GATE_SUITES
