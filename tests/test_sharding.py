"""Unit and property tests for repro.experiments.sharding.

The sweep layer's correctness rests on a handful of pure functions —
shard addressing, fault-spec parsing, recipe fingerprints, telemetry
wire formats — plus the crash-safe store.  This suite pins them down;
the end-to-end crash/resume matrix lives in ``test_sweep_resume.py``.
"""

import dataclasses
import itertools
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError, FaultInjected
from repro.experiments import artifacts, sharding
from repro.experiments.sharding import (
    ShardSpec,
    SweepRecipe,
    SweepStore,
    fault_injection,
    maybe_fault,
    parse_fault,
    parse_shard,
    shard_assignment,
    shard_of,
    trial_plan,
)
from repro.obs.metrics import (
    MetricsRegistry,
    delta_from_wire,
    delta_to_wire,
)
from repro.obs.profile import spans_from_wire, spans_to_wire
from repro.testing import fault_points, sweep_recipes, trial_plans


# ---------------------------------------------------------------------------
# Recipes and fingerprints
# ---------------------------------------------------------------------------
class TestRecipeFingerprint:
    def test_deterministic(self):
        a = SweepRecipe("E6", "quick", checked=False, backend="scalar")
        b = SweepRecipe("E6", "quick", checked=False, backend="scalar")
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize(
        "change",
        [
            {"experiment_id": "E7"},
            {"profile": "full"},
            {"checked": True},
            {"backend": "vector"},
            {"backend": None},
        ],
    )
    def test_sensitive_to_every_field(self, change):
        base = SweepRecipe("E6", "quick", checked=False, backend="scalar")
        other = dataclasses.replace(base, **change)
        assert base.fingerprint() != other.fingerprint()

    def test_none_backend_is_not_scalar(self):
        # "ambient default" and "explicit scalar" must not share a store:
        # equal behavior today is not a provenance guarantee.
        assert (
            SweepRecipe("E1", backend=None).fingerprint()
            != SweepRecipe("E1", backend="scalar").fingerprint()
        )

    @settings(max_examples=40, deadline=None)
    @given(recipe=sweep_recipes())
    def test_fingerprint_is_hex_and_reproducible(self, recipe):
        fingerprint = recipe.fingerprint()
        assert fingerprint == recipe.fingerprint()
        assert len(fingerprint) == 32
        int(fingerprint, 16)


# ---------------------------------------------------------------------------
# Shard addressing
# ---------------------------------------------------------------------------
class TestShardSpec:
    def test_parse_roundtrip(self):
        assert parse_shard("2/5") == ShardSpec(2, 5)
        assert str(ShardSpec(2, 5)) == "2/5"

    @pytest.mark.parametrize("bad", ["", "3", "1/2/3", "a/2", "1/b", "-1/2", "2/2", "0/0"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ExperimentError):
            parse_shard(bad)

    def test_shard_of_rejects_bad_inputs(self):
        with pytest.raises(ExperimentError):
            shard_of(-1, 2)
        with pytest.raises(ExperimentError):
            shard_of(0, 0)


class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(call_sizes=trial_plans(), count=st.integers(min_value=1, max_value=7))
    def test_shards_are_a_disjoint_cover(self, call_sizes, count):
        plan = trial_plan(call_sizes)
        pieces = [
            shard_assignment(call_sizes, ShardSpec(index, count))
            for index in range(count)
        ]
        # Disjoint: no trial appears in two shards.  Cover: together they
        # are exactly the plan (order-preserving within each shard).
        merged = sorted(itertools.chain.from_iterable(pieces))
        assert merged == plan
        seen = set()
        for piece in pieces:
            assert seen.isdisjoint(piece)
            seen.update(piece)

    @settings(max_examples=60, deadline=None)
    @given(
        call_sizes=trial_plans(),
        k1=st.integers(min_value=1, max_value=7),
        k2=st.integers(min_value=1, max_value=7),
    )
    def test_addresses_stable_under_shard_count_changes(self, call_sizes, k1, k2):
        # The (ordinal, call, item) address of every trial is independent
        # of how many shards split the sweep — records written under one
        # k are valid under any other.
        union1 = sorted(
            itertools.chain.from_iterable(
                shard_assignment(call_sizes, ShardSpec(i, k1)) for i in range(k1)
            )
        )
        union2 = sorted(
            itertools.chain.from_iterable(
                shard_assignment(call_sizes, ShardSpec(i, k2)) for i in range(k2)
            )
        )
        assert union1 == union2 == trial_plan(call_sizes)

    @settings(max_examples=40, deadline=None)
    @given(call_sizes=trial_plans(), count=st.integers(min_value=1, max_value=7))
    def test_round_robin_balance(self, call_sizes, count):
        plan = trial_plan(call_sizes)
        loads = [
            len(shard_assignment(call_sizes, ShardSpec(index, count)))
            for index in range(count)
        ]
        assert sum(loads) == len(plan)
        assert max(loads) - min(loads) <= 1


# ---------------------------------------------------------------------------
# Telemetry deltas: wire round-trips and order-insensitive merging
# ---------------------------------------------------------------------------
def _sample_registry(seed: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("trials_total", "count")
    counter.inc(kind="a", amount=seed + 1)
    counter.inc(kind="b", amount=2 * seed + 1)
    registry.gauge("peak_bytes", "peak").set_max(100 * (seed + 1))
    histogram = registry.histogram("rounds", "rounds", buckets=(1, 2, 4, 8))
    for value in range(seed + 2):
        histogram.observe(value)
    return registry


class TestWireFormats:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_metrics_delta_roundtrip(self, seed):
        delta = _sample_registry(seed).since({})
        assert delta_from_wire(delta_to_wire(delta)) == delta

    def test_metrics_wire_is_json_native(self):
        import json

        wire = delta_to_wire(_sample_registry(3).since({}))
        assert json.loads(json.dumps(wire)) == wire

    def test_spans_roundtrip(self):
        delta = {"harness.trial": (3, 1.5, 0.9), "experiment.E6": (1, 2.0, 2.0)}
        assert spans_from_wire(spans_to_wire(delta)) == delta

    @settings(max_examples=30, deadline=None)
    @given(order=st.permutations(list(range(4))))
    def test_merge_is_order_insensitive(self, order):
        # Shards complete in arbitrary order; the coordinator's merged
        # registry must not depend on which finished first.
        deltas = [_sample_registry(seed).since({}) for seed in range(4)]
        reference = MetricsRegistry()
        for delta in deltas:
            reference.merge(delta)
        permuted = MetricsRegistry()
        for index in order:
            permuted.merge(delta_from_wire(delta_to_wire(deltas[index])))
        assert permuted.collect() == reference.collect()


# ---------------------------------------------------------------------------
# Fault parsing and injection
# ---------------------------------------------------------------------------
class TestFaults:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("trial:0", ("trial", 0, "raise")),
            ("trial:7:kill", ("trial", 7, "kill")),
            ("call:2:exit", ("call", 2, "exit")),
            ("merge", ("merge", None, "raise")),
            ("final:kill", ("final", None, "kill")),
        ],
    )
    def test_parse(self, spec, expected):
        assert parse_fault(spec) == expected

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "boom",
            "trial",
            "trial:x",
            "trial:-1",
            "trial:1:explode",
            "merge:3",
            "final:0:raise",
            "trial:1:raise:extra",
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ExperimentError):
            parse_fault(bad)

    @settings(max_examples=50, deadline=None)
    @given(spec=fault_points())
    def test_strategy_only_emits_parseable_specs(self, spec):
        kind, ordinal, mode = parse_fault(spec)
        assert kind in ("trial", "call", "merge", "final")
        assert mode in ("raise", "exit", "kill")

    def test_scope_sets_and_restores_env(self):
        assert os.environ.get("REPRO_FAULT_AT") is None
        with fault_injection("merge"):
            assert os.environ["REPRO_FAULT_AT"] == "merge"
        assert os.environ.get("REPRO_FAULT_AT") is None

    def test_scope_restores_on_fault(self):
        with pytest.raises(FaultInjected):
            with fault_injection("trial:3"):
                maybe_fault("trial", 3)
        assert os.environ.get("REPRO_FAULT_AT") is None

    def test_scope_validates_eagerly(self):
        with pytest.raises(ExperimentError):
            with fault_injection("nonsense"):
                pass

    def test_non_matching_points_pass_through(self):
        with fault_injection("trial:3"):
            maybe_fault("trial", 2)
            maybe_fault("call", 3)
            maybe_fault("merge")

    def test_unarmed_is_a_noop(self):
        maybe_fault("trial", 0)
        maybe_fault("merge")


# ---------------------------------------------------------------------------
# The sweep store
# ---------------------------------------------------------------------------
class TestSweepStore:
    def test_trial_roundtrip(self, tmp_path):
        store = SweepStore(tmp_path, SweepRecipe("E1"))
        spans = {"harness.trial": (1, 0.5, 0.5)}
        metrics = _sample_registry(1).since({})
        store.save_trial(0, 2, {"rounds": 7}, spans, metrics, item_value=(1, 2))
        record = store.load_trial(0, 2, item_value=(1, 2))
        assert record == {"result": {"rounds": 7}, "spans": spans, "metrics": metrics}

    def test_item_digest_mismatch_is_a_miss(self, tmp_path):
        # The experiment changed what it maps over: stale records must be
        # recomputed, not served for the wrong input.
        store = SweepStore(tmp_path, SweepRecipe("E1"))
        store.save_trial(0, 0, "result", {}, {}, item_value=(1, 2))
        assert store.load_trial(0, 0, item_value=(1, 3)) is None
        assert store.load_trial(0, 0, item_value=(1, 2)) is not None

    def test_missing_trial_is_none(self, tmp_path):
        store = SweepStore(tmp_path, SweepRecipe("E1"))
        assert store.load_trial(0, 0, item_value=0) is None

    def test_completed_trials_sorted(self, tmp_path):
        store = SweepStore(tmp_path, SweepRecipe("E1"))
        for call, item in [(2, 0), (0, 1), (0, 0)]:
            store.save_trial(call, item, None, {}, {}, item_value=(call, item))
        assert store.completed_trials() == [(0, 0), (0, 1), (2, 0)]

    def test_distinct_recipes_distinct_directories(self, tmp_path):
        a = SweepStore(tmp_path, SweepRecipe("E1"))
        b = SweepStore(tmp_path, SweepRecipe("E2"))
        a.save_trial(0, 0, "a", {}, {}, item_value=0)
        assert b.load_trial(0, 0, item_value=0) is None
        assert a.path != b.path

    def test_truncated_record_is_a_miss(self, tmp_path):
        store = SweepStore(tmp_path, SweepRecipe("E1"))
        store.save_trial(0, 0, "payload", {}, {}, item_value=0)
        path = store.artifacts._path(SweepStore.trial_name(0, 0))
        path.write_bytes(path.read_bytes()[:-5])
        assert store.load_trial(0, 0, item_value=0) is None
        assert store.artifacts.stats["corrupt"] == 1

    def test_clear_keeps_recipe_marker(self, tmp_path):
        store = SweepStore(tmp_path, SweepRecipe("E1"))
        store.save_trial(0, 0, "x", {}, {}, item_value=0)
        store.clear()
        assert store.completed_trials() == []
        assert store.artifacts.load_json("recipe")["experiment_id"] == "E1"


# ---------------------------------------------------------------------------
# ArtifactStore durability (the satellite fix: atomic writes + framing)
# ---------------------------------------------------------------------------
class TestArtifactStoreDurability:
    def test_roundtrip_and_stats(self, tmp_path):
        store = artifacts.ArtifactStore(tmp_path)
        store.save("entry", {"value": [1, 2, 3]})
        assert store.load("entry") == {"value": [1, 2, 3]}
        assert store.stats["saved"] == 1 and store.stats["loaded"] == 1

    def test_missing_returns_default(self, tmp_path):
        store = artifacts.ArtifactStore(tmp_path)
        assert store.load("ghost", default="fallback") == "fallback"
        assert store.stats["missing"] == 1

    @pytest.mark.parametrize("keep", [0, 5, 17, 40])
    def test_any_prefix_truncation_is_detected(self, tmp_path, keep):
        # A killed writer on a non-atomic filesystem (or a torn copy)
        # leaves a prefix; every prefix length must fail verification.
        store = artifacts.ArtifactStore(tmp_path)
        store.save("entry", list(range(100)))
        path = store._path("entry")
        data = path.read_bytes()
        assert keep < len(data)
        path.write_bytes(data[:keep])
        assert store.load("entry", default="recompute") == "recompute"
        assert store.stats["corrupt"] == 1

    def test_flipped_payload_byte_is_detected(self, tmp_path):
        store = artifacts.ArtifactStore(tmp_path)
        store.save("entry", "payload")
        path = store._path("entry")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.load("entry") is None
        assert store.stats["corrupt"] == 1

    def test_temp_files_invisible_and_cleared(self, tmp_path):
        store = artifacts.ArtifactStore(tmp_path)
        store.save("entry", 1)
        (tmp_path / ".tmp-orphan").write_bytes(b"half a write")
        assert store.list() == ["entry"]
        store.clear()
        assert store.list() == []
        assert not (tmp_path / ".tmp-orphan").exists()

    def test_list_prefix_and_delete(self, tmp_path):
        store = artifacts.ArtifactStore(tmp_path)
        for name in ["a-1", "a-2", "b-1"]:
            store.save(name, name)
        assert store.list("a-") == ["a-1", "a-2"]
        assert store.delete("a-1") is True
        assert store.delete("a-1") is False
        assert store.list() == ["a-2", "b-1"]

    def test_json_roundtrip_and_corruption(self, tmp_path):
        store = artifacts.ArtifactStore(tmp_path)
        store.save_json("doc", {"k": [1, "two"]})
        assert store.load_json("doc") == {"k": [1, "two"]}
        path = store._path("doc")
        path.write_bytes(path.read_bytes()[: len(b"repro-artifact/1\n") + 10])
        assert store.load_json("doc", default={}) == {}

    @pytest.mark.parametrize("bad", ["", "a/b", ".hidden"])
    def test_invalid_names_rejected(self, tmp_path, bad):
        store = artifacts.ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.save(bad, 1)


# ---------------------------------------------------------------------------
# Reentrancy guard
# ---------------------------------------------------------------------------
class TestScope:
    def test_nested_activation_rejected(self, tmp_path):
        scope = sharding.SweepScope(
            SweepStore(tmp_path, SweepRecipe("E1")), ShardSpec(0, 1)
        )
        with scope.activate():
            with pytest.raises(ExperimentError):
                with scope.activate():
                    pass
        assert sharding.active_sweep() is None

    def test_suspended_scope_not_returned(self, tmp_path):
        scope = sharding.SweepScope(
            SweepStore(tmp_path, SweepRecipe("E1")), ShardSpec(0, 1)
        )
        with scope.activate():
            assert sharding.active_sweep() is scope
            with scope._suspend():
                assert sharding.active_sweep() is None
            assert sharding.active_sweep() is scope
