"""Unit tests for the observability layer itself.

Covers the event wire format, every sink, the recorder's fan-out and
lifecycle, offline replay, the profiling-span registry (including the
cross-process snapshot/delta/merge protocol and the ``REPRO_JOBS``
parallel path), run manifests, telemetry accessors, and the
``None``-vs-``0`` semantics of ``blocked_initiations``.
"""

import io
import json

import pytest

from repro.errors import ProtocolError
from repro.experiments.harness import map_trials
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.obs import (
    CounterSink,
    DeliveryEvent,
    InitiationEvent,
    JsonlSink,
    MemorySink,
    Recorder,
    RingBufferSink,
    RoundEvent,
    WakeupEvent,
    event_to_dict,
    event_to_json,
    events_to_jsonl,
    merge_spans,
    node_key,
    replay_into,
    reset_spans,
    run_manifest,
    span,
    span_aggregates,
    span_snapshot,
    spans_since,
)
from repro.obs.telemetry import RunTelemetry
from repro.protocols.base import per_node_rng_factory
from repro.protocols.push_pull import PushPullProtocol, run_push_pull
from repro.sim.engine import Engine
from repro.sim.metrics import EngineMetrics


class TestWireFormat:
    def test_node_key_passthrough_and_repr(self):
        assert node_key(7) == 7
        assert node_key("gateway") == "gateway"
        assert node_key((2, 1)) == "(2, 1)"

    def test_event_to_dict_maps_node_fields(self):
        event = InitiationEvent(
            round=3, initiator=(0, 1), responder=5, latency=2, lost=True
        )
        record = event_to_dict(event)
        assert record == {
            "kind": "initiate",
            "round": 3,
            "initiator": "(0, 1)",
            "responder": 5,
            "latency": 2,
            "ping": False,
            "lost": True,
        }

    def test_event_to_json_is_canonical(self):
        event = RoundEvent(round=0, initiations=2, deliveries=1, in_flight=4)
        line = event_to_json(event)
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )

    def test_events_to_jsonl_trailing_newline(self):
        assert events_to_jsonl([]) == ""
        stream = events_to_jsonl([WakeupEvent(round=1, node=0)])
        assert stream.endswith("\n")
        assert stream.count("\n") == 1


class TestSinks:
    def test_memory_sink_retains_in_order(self):
        sink = MemorySink()
        first = WakeupEvent(round=0, node=1)
        second = WakeupEvent(round=1, node=2)
        sink.write(first)
        sink.write(second)
        assert sink.events == [first, second]
        assert sink.to_jsonl() == events_to_jsonl([first, second])

    def test_ring_buffer_keeps_tail(self):
        sink = RingBufferSink(capacity=2)
        for r in range(5):
            sink.write(WakeupEvent(round=r, node=0))
        assert [e.round for e in sink.events] == [3, 4]

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_jsonl_sink_owns_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write(WakeupEvent(round=0, node=3))
        sink.close()
        assert sink.lines_written == 1
        assert path.read_text() == '{"kind":"wakeup","node":3,"round":0}\n'

    def test_jsonl_sink_borrows_open_file(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.write(WakeupEvent(round=2, node=0))
        sink.close()  # flushes, must not close a borrowed file
        assert not buffer.closed
        assert buffer.getvalue() == '{"kind":"wakeup","node":0,"round":2}\n'

    def test_jsonl_sink_close_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write(WakeupEvent(round=0, node=1))
        sink.close()
        sink.close()  # second close must be a no-op, not a ValueError
        assert path.read_text() == '{"kind":"wakeup","node":1,"round":0}\n'

    def test_jsonl_sink_close_tolerates_externally_closed_file(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.write(WakeupEvent(round=0, node=1))
        buffer.close()  # owner closed the borrowed file first
        sink.close()  # must not flush a closed file

    def test_recorder_exit_then_explicit_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        with Recorder(sink) as recorder:
            recorder.record(WakeupEvent(round=0, node=2))
        sink.close()  # Recorder.__exit__ already closed it
        assert path.read_text() == '{"kind":"wakeup","node":2,"round":0}\n'

    def test_counter_sink_aggregates(self):
        sink = CounterSink()
        sink.write(InitiationEvent(round=0, initiator=0, responder=1, latency=1))
        sink.write(
            InitiationEvent(round=0, initiator=1, responder=0, latency=1, lost=True)
        )
        sink.write(
            DeliveryEvent(
                round=1,
                initiator=0,
                responder=1,
                initiated_at=0,
                learned_by_initiator=2,
                learned_by_responder=1,
            )
        )
        sink.write(RoundEvent(round=0, initiations=2, deliveries=0, in_flight=5))
        sink.write(RoundEvent(round=1, initiations=0, deliveries=1, in_flight=2))
        assert sink.by_kind == {"initiate": 2, "deliver": 1, "round": 2}
        assert sink.rumors_learned == 3
        assert sink.lost_initiations == 1
        assert sink.max_in_flight == 5


class TestRecorder:
    def test_fan_out_and_counts(self):
        memory = MemorySink()
        counter = CounterSink()
        recorder = Recorder(memory, counter)
        recorder.record(WakeupEvent(round=0, node=0))
        assert recorder.events_recorded == 1
        assert len(memory.events) == 1
        assert counter.by_kind == {"wakeup": 1}

    def test_sink_lookup_and_events_of(self):
        recorder = Recorder.in_memory()
        recorder.record(WakeupEvent(round=0, node=0))
        recorder.record(RoundEvent(round=0, initiations=0, deliveries=0, in_flight=0))
        assert isinstance(recorder.sink(MemorySink), MemorySink)
        assert recorder.sink(CounterSink) is None
        assert [e.kind for e in recorder.events_of("round")] == ["round"]

    def test_context_manager_closes_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Recorder.to_jsonl(path) as recorder:
            recorder.record(WakeupEvent(round=0, node=9))
        assert path.read_text().startswith('{"kind":"wakeup"')

    def test_replay_into_reproduces_counters(self):
        graph = generators.clique(5)
        live = CounterSink()
        with Recorder(MemorySink(), live) as recorder:
            run_push_pull(graph, seed=2, recorder=recorder)
        offline = CounterSink()
        replay_into(recorder.events, offline)
        assert offline.by_kind == live.by_kind
        assert offline.rumors_learned == live.rumors_learned
        assert offline.max_in_flight == live.max_in_flight


class TestSpans:
    def test_span_accumulates(self):
        reset_spans()
        for _ in range(3):
            with span("unit.op"):
                pass
        stats = span_aggregates()["unit.op"]
        assert stats["count"] == 3
        assert stats["seconds"] >= 0.0
        assert stats["max_seconds"] <= stats["seconds"]
        assert stats["mean_seconds"] == pytest.approx(stats["seconds"] / 3)

    def test_snapshot_delta_merge_roundtrip(self):
        reset_spans()
        with span("unit.before"):
            pass
        base = span_snapshot()
        with span("unit.before"):
            pass
        with span("unit.after"):
            pass
        delta = spans_since(base)
        assert set(delta) == {"unit.before", "unit.after"}
        assert delta["unit.before"][0] == 1  # only the post-snapshot entry
        reset_spans()
        merge_spans(delta)
        merge_spans(delta)  # counts add, totals add, maxima take max
        stats = span_aggregates()
        assert stats["unit.before"]["count"] == 2
        assert stats["unit.after"]["count"] == 2

    def test_parallel_trials_merge_worker_spans(self, monkeypatch):
        items = list(range(6))
        reset_spans()
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = map_trials(abs, items)
        serial_count = span_aggregates()["harness.trial"]["count"]
        reset_spans()
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = map_trials(abs, items)
        parallel_count = span_aggregates()["harness.trial"]["count"]
        assert serial == parallel
        assert serial_count == parallel_count == len(items)


class TestManifest:
    def test_environment_fields_present(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        manifest = run_manifest(experiment="E1", seed=7)
        assert manifest["schema"] == "repro-manifest/1"
        assert manifest["repro_jobs"] == "4"
        assert manifest["experiment"] == "E1"
        assert manifest["seed"] == 7
        assert "python" in manifest and "captured_at" in manifest

    def test_reserved_keys_raise(self):
        with pytest.raises(ValueError, match="reserved"):
            run_manifest(git_rev="spoofed")


class TestTelemetryAccessors:
    def test_in_flight_histogram(self):
        telemetry = RunTelemetry(in_flight_curve=(2, 0, 2, 1))
        assert telemetry.in_flight_histogram() == {0: 1, 1: 1, 2: 2}
        assert telemetry.max_in_flight() == 2

    def test_empty_curves(self):
        telemetry = RunTelemetry()
        assert telemetry.coverage_curve is None
        assert telemetry.in_flight_histogram() == {}
        assert telemetry.max_in_flight() == 0


class TestBlockedInitiationSemantics:
    """``None`` = never tracked; ``0`` = tracked and clean (two meanings)."""

    def test_untracked_renders_not_applicable(self):
        metrics = EngineMetrics()
        assert metrics.blocked_initiations is None
        assert "blocked=n/a (blocking not enforced)" in str(metrics)

    def test_non_enforcing_engine_leaves_none(self):
        graph = generators.clique(4)
        make_rng = per_node_rng_factory(0)
        engine = Engine(graph, lambda node: PushPullProtocol(make_rng(node)))
        for _ in range(5):
            engine.step()
        assert engine.metrics.blocked_initiations is None
        result = run_push_pull(graph, seed=0)
        assert result.blocked_initiations is None
        assert "blocked initiations" not in str(result)

    def test_enforcing_clean_run_reports_zero(self):
        # Unit latencies: every exchange resolves before the next round,
        # so even push--pull satisfies the blocking discipline.
        graph = generators.clique(5)
        make_rng = per_node_rng_factory(1)
        engine = Engine(
            graph,
            lambda node: PushPullProtocol(make_rng(node)),
            enforce_blocking=True,
        )
        for _ in range(10):
            engine.step()
        assert engine.metrics.blocked_initiations == 0
        assert "blocked=0" in str(engine.metrics)

    def test_violation_counted_before_raise(self):
        graph = LatencyGraph(edges=[(0, 1, 5)])
        make_rng = per_node_rng_factory(0)
        engine = Engine(
            graph,
            lambda node: PushPullProtocol(make_rng(node)),
            enforce_blocking=True,
        )
        with pytest.raises(ProtocolError):
            for _ in range(3):
                engine.step()
        assert engine.metrics.blocked_initiations == 1

    def test_recorder_sees_blocked_event(self):
        graph = LatencyGraph(edges=[(0, 1, 5)])
        make_rng = per_node_rng_factory(0)
        recorder = Recorder.in_memory()
        engine = Engine(
            graph,
            lambda node: PushPullProtocol(make_rng(node)),
            enforce_blocking=True,
            recorder=recorder,
        )
        with pytest.raises(ProtocolError):
            for _ in range(3):
                engine.step()
        assert len(recorder.events_of("blocked")) == 1
