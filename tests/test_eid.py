"""Tests for EID, Termination Check, and General EID (Algorithms 1, 3, 4)."""

import random

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.base import PhaseRunner
from repro.protocols.eid import (
    run_eid,
    run_general_eid,
    run_termination_check,
    spanner_iterations,
)


def all_to_all_done(graph, state) -> bool:
    everyone = set(graph.nodes())
    return all(everyone <= state.rumors(v) for v in everyone)


class TestEID:
    def test_solves_all_to_all_on_grid(self):
        g = generators.grid(4, 4)
        runner = PhaseRunner(g)
        report = run_eid(g, g.weighted_diameter(), seed=0, runner=runner)
        assert all_to_all_done(g, runner.state)
        assert report.rounds > 0
        assert report.spanner.to_latency_graph().is_connected()

    def test_solves_all_to_all_with_latencies(self):
        g = generators.ring_of_cliques(4, 4, inter_latency=5, rng=random.Random(0))
        runner = PhaseRunner(g)
        run_eid(g, g.weighted_diameter(), seed=1, runner=runner)
        assert all_to_all_done(g, runner.state)

    def test_underestimated_diameter_fails_gracefully(self):
        # EID(k) with k below the slow-edge latency cannot cross it.
        g = generators.ring_of_cliques(4, 4, inter_latency=20, rng=random.Random(0))
        runner = PhaseRunner(g)
        run_eid(g, 2, seed=2, runner=runner)
        assert not all_to_all_done(g, runner.state)

    def test_rejects_bad_diameter(self):
        with pytest.raises(ProtocolError):
            run_eid(generators.clique(4), 0)

    def test_report_counts(self):
        g = generators.clique(8)
        report = run_eid(g, 1, seed=3)
        assert report.exchanges > 0
        assert report.diameter_estimate == 1

    def test_spanner_iterations_floor(self):
        assert spanner_iterations(1) == 2
        assert spanner_iterations(2) == 2
        assert spanner_iterations(64) == 6
        assert spanner_iterations(100) == 7


class TestTerminationCheck:
    def _check(self, graph, runner, k=None):
        k = k if k is not None else graph.weighted_diameter()

        def broadcast(tag):
            from repro.protocols.dtg import ldtg_factory

            # Enough tagged full-latency DTG sweeps to cross the graph.
            for i in range(graph.num_nodes):
                runner.run_phase(
                    ldtg_factory(graph, k, run_tag=f"{tag}:{i}"),
                    latencies_known=True,
                )

        return run_termination_check(runner, graph, k, broadcast, iteration_tag="t")

    def test_passes_when_complete(self):
        g = generators.grid(3, 3)
        runner = PhaseRunner(g)
        run_eid(g, g.weighted_diameter(), seed=0, runner=runner)
        assert all_to_all_done(g, runner.state)
        report = self._check(g, runner)
        assert report.passed
        assert report.unanimous

    def test_fails_when_incomplete(self):
        g = generators.ring_of_cliques(4, 4, inter_latency=20, rng=random.Random(0))
        runner = PhaseRunner(g)  # fresh state: nobody knows anything remote
        report = self._check(g, runner, k=1)
        assert not report.passed

    def test_flag_raised_for_unknown_neighbor(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        runner = PhaseRunner(g)
        # Wipe node 0's knowledge of its neighbor: flags must catch it.
        report = self._check(g, runner, k=1)
        # Fresh state seeds self rumors only; neighbors unknown -> fail.
        assert not report.passed

    def test_verdict_rounds_accounted(self):
        g = generators.grid(3, 3)
        runner = PhaseRunner(g)
        run_eid(g, g.weighted_diameter(), seed=0, runner=runner)
        before = runner.total_rounds
        report = self._check(g, runner)
        assert report.rounds == runner.total_rounds - before
        assert report.rounds > 0


class TestGeneralEID:
    @pytest.mark.parametrize(
        "graph",
        [
            generators.grid(3, 3),
            generators.clique(10),
            generators.ring_of_cliques(3, 4, inter_latency=4, rng=random.Random(0)),
        ],
        ids=["grid", "clique", "ring-of-cliques"],
    )
    def test_terminates_complete_and_unanimous(self, graph):
        report = run_general_eid(graph, seed=0)
        assert report.first_complete_round is not None
        # Lemma 18: no premature termination.
        assert report.first_complete_round <= report.rounds
        assert report.iterations >= 1
        assert report.final_estimate >= 1

    def test_doubles_until_slow_edges_covered(self):
        g = generators.ring_of_cliques(4, 4, inter_latency=16, rng=random.Random(1))
        report = run_general_eid(g, seed=1)
        # With inter-clique latency 16, the estimate must reach >= 16 since
        # no information can cross the boundaries before then.
        assert report.final_estimate >= 16
        assert report.iterations >= 5

    def test_deterministic(self):
        g = generators.grid(3, 3)
        a = run_general_eid(g, seed=5)
        b = run_general_eid(g, seed=5)
        assert a.rounds == b.rounds
        assert a.final_estimate == b.final_estimate

    def test_single_clique_fast(self):
        g = generators.clique(8)
        report = run_general_eid(g, seed=2)
        assert report.final_estimate == 1
        assert report.iterations == 1
