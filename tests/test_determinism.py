"""Determinism oracle: same seed, same inputs — bit-identical results.

Every protocol runner in ``src/repro/protocols/`` is executed twice with
identical arguments; any field-level difference means hidden global state
or iteration-order dependence (which would silently poison every
seed-averaged experiment table).  The replay half re-executes a recorded
trace and demands an identical event stream and metrics.
"""

import dataclasses

from repro.graphs.generators import clique, ring_of_cliques
from repro.protocols.aggregation import run_aggregate
from repro.protocols.base import per_node_rng_factory
from repro.protocols.discovery import run_general_eid_unknown_latencies
from repro.protocols.dtg import run_ldtg
from repro.protocols.eid import run_eid, run_general_eid
from repro.protocols.flooding import run_flooding
from repro.protocols.path_discovery import run_path_discovery
from repro.protocols.push_pull import PushPullProtocol, run_push_pull
from repro.protocols.robustness import (
    run_push_pull_under_failures,
    run_spanner_pipeline_under_failures,
)
from repro.protocols.unified import run_unified
from repro.sim.engine import Engine
from repro.sim.failures import MessageLoss
from repro.sim.runner import broadcast_complete
from repro.sim.state import NetworkState
from repro.sim.trace import TraceRecorder
from repro.testing import record_and_replay, replay


def small_graph():
    return ring_of_cliques(3, 4, inter_latency=5)


class TestRunnersDeterministic:
    """Run each protocol twice with the same seed; results must be equal."""

    def test_push_pull(self):
        graph = small_graph()
        a = run_push_pull(graph, seed=7, track_progress=True)
        b = run_push_pull(graph, seed=7, track_progress=True)
        assert a == b

    def test_flooding(self):
        graph = small_graph()
        assert run_flooding(graph) == run_flooding(graph)

    def test_ldtg(self):
        graph = small_graph()
        assert run_ldtg(graph, 5) == run_ldtg(graph, 5)

    def test_eid(self):
        graph = small_graph()
        diameter = graph.weighted_diameter()
        a = run_eid(graph, diameter, seed=3)
        b = run_eid(graph, diameter, seed=3)
        # The spanner field holds object references; compare the scalars.
        assert (a.rounds, a.exchanges, a.diameter_estimate) == (
            b.rounds,
            b.exchanges,
            b.diameter_estimate,
        )

    def test_general_eid(self):
        graph = small_graph()
        assert run_general_eid(graph, seed=3) == run_general_eid(graph, seed=3)

    def test_general_eid_unknown_latencies(self):
        graph = small_graph()
        a = run_general_eid_unknown_latencies(graph, seed=3)
        b = run_general_eid_unknown_latencies(graph, seed=3)
        assert a == b

    def test_path_discovery(self):
        graph = ring_of_cliques(3, 3, inter_latency=3)
        assert run_path_discovery(graph) == run_path_discovery(graph)

    def test_unified(self):
        graph = small_graph()
        a = run_unified(graph, latencies_known=True, seed=2)
        b = run_unified(graph, latencies_known=True, seed=2)
        assert dataclasses.astuple(a) == dataclasses.astuple(b)

    def test_aggregate(self):
        graph = small_graph()
        values = {node: hash(repr(node)) % 100 for node in graph.nodes()}
        a = run_aggregate(graph, values, op="max", seed=5)
        b = run_aggregate(graph, values, op="max", seed=5)
        assert a == b

    def test_push_pull_under_failures(self):
        graph = clique(10)
        a = run_push_pull_under_failures(graph, MessageLoss(p=0.2, seed=4), seed=1)
        b = run_push_pull_under_failures(graph, MessageLoss(p=0.2, seed=4), seed=1)
        assert a == b

    def test_spanner_pipeline_under_failures(self):
        graph = small_graph()
        a = run_spanner_pipeline_under_failures(graph, None, seed=1)
        b = run_spanner_pipeline_under_failures(graph, None, seed=1)
        assert a == b


class TestReplayOracle:
    def test_record_and_replay_push_pull(self):
        graph = small_graph()
        source = graph.nodes()[0]
        rumor = ("rumor", source)

        def make_state():
            state = NetworkState(graph.nodes())
            state.add_rumor(source, rumor)
            return state

        def make_factory():
            make_rng = per_node_rng_factory(9)
            return lambda node: PushPullProtocol(make_rng(node))

        report = record_and_replay(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=broadcast_complete(rumor),
        )
        assert report.rounds > 0
        assert report.events  # the replayed schedule really ran

    def test_replay_reproduces_metrics_bit_identically(self):
        graph = small_graph()
        state = NetworkState(graph.nodes())
        state.seed_self_rumors()
        recorder = TraceRecorder()
        make_rng = per_node_rng_factory(4)
        engine = Engine(
            graph,
            recorder.wrap(lambda node: PushPullProtocol(make_rng(node))),
            state=state,
        )
        for _ in range(30):
            engine.step()
        fresh = NetworkState(graph.nodes())
        fresh.seed_self_rumors()
        report = replay(
            recorder,
            graph,
            rounds=30,
            state=fresh,
            expected_metrics=engine.metrics,
        )
        assert report.metrics == engine.metrics
        assert report.rounds == 30
