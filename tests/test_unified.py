"""Tests for the unified parallel composition (Theorem 20)."""

import random

from repro.graphs import generators
from repro.graphs.latency_models import bimodal_latency
from repro.protocols.unified import run_unified


class TestUnified:
    def test_rounds_is_twice_winner(self):
        g = generators.clique(10)
        report = run_unified(g, latencies_known=True, seed=0)
        winner_rounds = (
            report.push_pull_rounds
            if report.winner == "push-pull"
            else report.spanner_rounds
        )
        assert report.rounds == 2 * winner_rounds

    def test_tracks_min_component(self):
        g = generators.grid(3, 3)
        report = run_unified(g, latencies_known=True, seed=1)
        assert report.rounds <= 2 * report.push_pull_rounds
        assert report.rounds <= 2 * report.spanner_rounds

    def test_unknown_latency_variant_runs(self):
        g = generators.clique(8)
        report = run_unified(g, latencies_known=False, seed=2)
        assert report.winner in ("push-pull", "spanner")
        assert report.rounds > 0

    def test_spanner_wins_on_big_dumbbell(self):
        g = generators.dumbbell(48, bridge_length=1)
        report = run_unified(g, latencies_known=True, seed=0)
        # ℓ*/φ* = Θ(n²) while D = 3: the spanner pipeline (which completes
        # well before its detection budget) beats push--pull's Θ(n) search
        # for the single cut edge.
        assert report.spanner_rounds < 2 * report.push_pull_rounds

    def test_pushpull_competitive_on_expander(self):
        g = generators.random_regular(
            32, 6, latency_model=bimodal_latency(1, 40, 0.5), rng=random.Random(1)
        )
        report = run_unified(g, latencies_known=True, seed=1)
        assert report.push_pull_rounds < 150  # ~ (ℓ*/φ*) log n, small here
