"""Tests for the guessing game, predicates, and Alice strategies (Section 3.1)."""

import random
import statistics

import pytest

from repro.errors import GameError
from repro.lowerbounds.game import GuessingGame, target_from_gadget
from repro.lowerbounds.predicates import (
    fixed_predicate,
    random_predicate,
    singleton_predicate,
)
from repro.lowerbounds.strategies import (
    fresh_pair_strategy,
    play_game,
    random_guessing_strategy,
    systematic_sweep_strategy,
)


class TestGameMechanics:
    def test_initial_state(self):
        game = GuessingGame(3, frozenset({(0, 3), (1, 4)}))
        assert not game.done
        assert game.rounds == 0
        assert game.remaining_target == {(0, 3), (1, 4)}

    def test_empty_target_done_immediately(self):
        game = GuessingGame(3, frozenset())
        assert game.done

    def test_hit_revealed(self):
        game = GuessingGame(3, frozenset({(0, 3)}))
        hits = game.guess({(0, 3), (1, 4)})
        assert hits == {(0, 3)}
        assert game.done

    def test_miss_not_revealed(self):
        game = GuessingGame(3, frozenset({(0, 3)}))
        assert game.guess({(1, 3)}) == frozenset()
        assert not game.done

    def test_column_elimination_on_hit(self):
        # Hitting (0, 3) removes every target pair with B-component 3.
        target = frozenset({(0, 3), (1, 3), (2, 4)})
        game = GuessingGame(3, target)
        game.guess({(0, 3)})
        assert game.remaining_target == {(2, 4)}

    def test_miss_does_not_eliminate_column(self):
        # Guessing (2, 3) (a non-target pair) must NOT clear column 3 —
        # this is the prose semantics vs the literal Eq. (2) reading.
        target = frozenset({(0, 3), (1, 3)})
        game = GuessingGame(3, target)
        game.guess({(2, 3)})
        assert game.remaining_target == target

    def test_guess_budget_enforced(self):
        game = GuessingGame(3, frozenset({(0, 3)}))
        seven = {(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5), (2, 3)}
        with pytest.raises(GameError):
            game.guess(seven)  # 7 > 2m = 6
        # 2m = 6 distinct guesses is fine.
        game.guess({(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5)})

    def test_out_of_range_guess_rejected(self):
        game = GuessingGame(3, frozenset({(0, 3)}))
        with pytest.raises(GameError):
            game.guess({(0, 0)})  # b must be in [m, 2m)
        with pytest.raises(GameError):
            game.guess({(7, 3)})

    def test_out_of_range_target_rejected(self):
        with pytest.raises(GameError):
            GuessingGame(3, frozenset({(0, 9)}))

    def test_counters(self):
        game = GuessingGame(3, frozenset({(0, 3)}))
        game.guess({(1, 3), (2, 4)})
        game.guess({(0, 3)})
        assert game.rounds == 2
        assert game.total_guesses == 3
        assert game.hits == {(0, 3)}

    def test_target_from_gadget_coordinates(self):
        assert target_from_gadget(4, {(0, 0), (3, 2)}) == frozenset(
            {(0, 4), (3, 6)}
        )


class TestPredicates:
    def test_singleton(self):
        target = singleton_predicate()(8, random.Random(0))
        assert len(target) == 1
        (a, b), = target
        assert 0 <= a < 8 and 8 <= b < 16

    def test_random_p_extremes(self):
        rng = random.Random(0)
        assert random_predicate(0.0)(5, rng) == frozenset()
        assert len(random_predicate(1.0)(5, rng)) == 25

    def test_random_p_rejects_bad(self):
        with pytest.raises(GameError):
            random_predicate(-0.1)

    def test_fixed(self):
        target = frozenset({(0, 5)})
        assert fixed_predicate(target)(5, random.Random(0)) == target


class TestStrategies:
    def test_sweep_solves_singleton_in_m_over_2_rounds(self):
        # The sweep guesses 2m per round over m^2 pairs: <= m/2 rounds.
        m = 10
        for seed in range(5):
            rng = random.Random(seed)
            game = GuessingGame(m, singleton_predicate()(m, rng))
            rounds = play_game(game, systematic_sweep_strategy, rng)
            assert rounds <= m // 2

    def test_fresh_pair_solves_random_target(self):
        rng = random.Random(1)
        game = GuessingGame(12, random_predicate(0.3)(12, rng))
        rounds = play_game(game, fresh_pair_strategy, rng)
        assert game.done
        assert rounds >= 1

    def test_random_guessing_solves_eventually(self):
        rng = random.Random(2)
        game = GuessingGame(10, random_predicate(0.4)(10, rng))
        play_game(game, random_guessing_strategy, rng)
        assert game.done

    def test_lemma4_linear_scaling(self):
        # Mean rounds for the singleton game grows ~linearly in m.
        def mean_rounds(m):
            values = []
            for seed in range(10):
                rng = random.Random(seed)
                game = GuessingGame(m, singleton_predicate()(m, rng))
                values.append(play_game(game, fresh_pair_strategy, rng))
            return statistics.fmean(values)

        small, large = mean_rounds(8), mean_rounds(32)
        assert large > 2 * small

    def test_lemma5_oblivious_pays_log_factor(self):
        # With Random_p, the oblivious strategy needs more rounds than the
        # adaptive one (the coupon-collector tail over target columns).
        m, p = 32, 0.2
        adaptive, oblivious = [], []
        for seed in range(10):
            rng = random.Random(seed)
            target = random_predicate(p)(m, rng)
            game_a = GuessingGame(m, target)
            adaptive.append(play_game(game_a, fresh_pair_strategy, random.Random(seed)))
            game_o = GuessingGame(m, target)
            oblivious.append(
                play_game(game_o, random_guessing_strategy, random.Random(seed))
            )
        assert statistics.fmean(oblivious) > 1.5 * statistics.fmean(adaptive)

    def test_max_rounds_guard(self):
        class Useless:
            def __call__(self, game, rng):
                game.guess(set())

        game = GuessingGame(4, frozenset({(0, 4)}))
        with pytest.raises(GameError):
            play_game(game, lambda: Useless(), random.Random(0), max_rounds=5)
