"""Tests for RR Broadcast (Algorithm 2 / Lemma 15)."""

import math
import random

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.base import PhaseRunner
from repro.protocols.rr_broadcast import (
    RRBroadcastProtocol,
    rr_broadcast_duration,
    rr_broadcast_factory,
)
from repro.protocols.spanner import DirectedSpanner, baswana_sen_spanner


def full_spanner(graph) -> DirectedSpanner:
    """The graph itself, oriented from lower to higher node id."""
    out_edges = {v: [] for v in graph.nodes()}
    for u, v, _ in graph.edges():
        tail, head = (u, v) if repr(u) <= repr(v) else (v, u)
        out_edges[tail].append(head)
    return DirectedSpanner(graph=graph, out_edges=out_edges, k=1)


class TestDuration:
    def test_lemma15_formula(self):
        assert rr_broadcast_duration(10, 3) == 40
        assert rr_broadcast_duration(5, 0) == 5


class TestProtocol:
    def test_runs_exactly_budget_rounds(self):
        g = generators.path(4)
        runner = PhaseRunner(g)
        runner.run_phase(
            rr_broadcast_factory(full_spanner(g), 3, duration=7),
            latencies_known=True,
        )
        assert runner.total_rounds == 7

    def test_covers_within_distance_k(self):
        # Lemma 15: nodes at weighted distance <= k exchange rumors.
        g = generators.path(6)  # unit latencies, distance = hops
        spanner = full_spanner(g)
        k = 3
        runner = PhaseRunner(g)
        runner.run_phase(rr_broadcast_factory(spanner, k), latencies_known=True)
        assert runner.state.knows(0, 3)
        assert runner.state.knows(3, 0)

    def test_all_to_all_when_k_at_least_diameter(self):
        g = generators.grid(3, 3)
        spanner = full_spanner(g)
        k = g.weighted_diameter()
        runner = PhaseRunner(g)
        runner.run_phase(rr_broadcast_factory(spanner, k), latencies_known=True)
        everyone = set(g.nodes())
        assert all(everyone <= runner.state.rumors(v) for v in everyone)

    def test_latency_filter_excludes_slow_out_edges(self):
        g = LatencyGraph(edges=[(0, 1, 1), (1, 2, 10)])
        spanner = full_spanner(g)
        runner = PhaseRunner(g)
        runner.run_phase(rr_broadcast_factory(spanner, 2), latencies_known=True)
        assert runner.state.knows(1, 0)
        assert not runner.state.knows(2, 0)  # edge (1,2) above threshold

    def test_works_with_real_spanner(self):
        g = generators.ring_of_cliques(4, 4, inter_latency=2, rng=random.Random(0))
        k_spanner = max(2, math.ceil(math.log2(g.num_nodes)))
        spanner = baswana_sen_spanner(g, k_spanner, random.Random(1))
        k = g.weighted_diameter() * (2 * k_spanner - 1)
        runner = PhaseRunner(g)
        runner.run_phase(rr_broadcast_factory(spanner, k), latencies_known=True)
        everyone = set(g.nodes())
        assert all(everyone <= runner.state.rumors(v) for v in everyone)

    def test_node_without_out_edges_still_informed_by_pull(self):
        # Orientation means some nodes never initiate; responses inform them.
        g = generators.star(6)
        spanner = DirectedSpanner(
            graph=g, out_edges={0: list(range(1, 6)), **{v: [] for v in range(1, 6)}}, k=1
        )
        runner = PhaseRunner(g)
        runner.run_phase(rr_broadcast_factory(spanner, 1), latencies_known=True)
        assert all(runner.state.knows(leaf, 0) for leaf in range(1, 6))

    def test_rejects_bad_parameters(self):
        g = generators.path(3)
        with pytest.raises(ProtocolError):
            rr_broadcast_factory(full_spanner(g), 0)
        with pytest.raises(ProtocolError):
            RRBroadcastProtocol([], duration=-1)
