"""Crash-resume bit-identity suite for sharded sweeps.

The contract under test: a sweep killed at *any* injected fault point
and resumed with ``run_sweep(..., resume=True)`` produces an
:class:`ExperimentTable` whose canonical bytes (rows, conclusion,
merged metrics — everything but the environment-dependent manifest) and
whose profiling-span *counts* are identical to an uninterrupted run;
and ``--shard i/k`` runs on independent processes merge to the serial
result bit-identically.

The in-process matrix uses ``raise``-mode faults (the store state at a
``raise`` is identical to a SIGKILL at the same point — persistence
happens before the fault check fires for the *next* trial, and writes
are atomic); the subprocess tests then cover the real ``kill``/``exit``
modes through the ``repro sweep`` CLI.

Experiments in the matrix (E1, E13) have cache-free trials: a trial
that warms the in-process artifact cache shifts hit/miss counters
between a cold resumed process and a warm uninterrupted one, exactly as
the existing ``REPRO_JOBS`` equivalence suite is scoped around.
"""

import os
import subprocess
import sys

import pytest

from repro import obs
from repro.errors import ExperimentError, FaultInjected
from repro.experiments import (
    ShardSpec,
    SweepRecipe,
    artifacts,
    run_experiment,
    run_sweep,
    sweep_status,
    table_to_json,
)
from repro.experiments.sharding import SweepStore, fault_injection

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def clean_world():
    """Each case starts from a cold process-global state, like a fresh run."""
    obs.reset_metrics()
    obs.reset_spans()
    artifacts.clear()
    yield
    obs.reset_metrics()
    obs.reset_spans()
    artifacts.clear()


def _reset_world():
    obs.reset_metrics()
    obs.reset_spans()
    artifacts.clear()


def _span_counts() -> dict[str, int]:
    return {
        name: aggregate["count"]
        for name, aggregate in obs.span_aggregates().items()
    }


def _clean_reference(experiment_id: str):
    """Canonical bytes + span counts of an uninterrupted plain run."""
    _reset_world()
    table = run_experiment(experiment_id, "quick", backend="scalar")
    return table_to_json(table), _span_counts()


# ---------------------------------------------------------------------------
# The kill-point matrix (in-process, raise-mode faults)
# ---------------------------------------------------------------------------
# Fault points chosen to hit every structural position in the DAG:
# the very first persist, a mid-shard trial, a late trial, a map_trials
# call boundary, and the post-experiment merge step.  E1 (quick) runs 40
# trials over 8 calls; E13 runs 4 trials in one call — points are picked
# per experiment so each one actually fires.
KILL_MATRIX = [
    ("E1", "trial:0"),
    ("E1", "trial:5"),
    ("E1", "trial:17"),
    ("E1", "call:2"),
    ("E1", "merge"),
    ("E13", "trial:0"),
    ("E13", "trial:2"),
    ("E13", "trial:3"),
    ("E13", "call:0"),
    ("E13", "merge"),
]


@pytest.mark.parametrize("experiment_id,fault", KILL_MATRIX)
def test_resume_after_kill_is_bit_identical(tmp_path, experiment_id, fault):
    clean_bytes, clean_spans = _clean_reference(experiment_id)

    _reset_world()
    with pytest.raises(FaultInjected):
        with fault_injection(fault):
            run_sweep(
                experiment_id, "quick", backend="scalar", store_root=tmp_path
            )

    _reset_world()
    result = run_sweep(
        experiment_id, "quick", backend="scalar", store_root=tmp_path, resume=True
    )
    assert table_to_json(result.table) == clean_bytes
    assert _span_counts() == clean_spans
    # The interrupted run's progress was actually reused, not recomputed
    # (except at trial:0, where nothing was persisted before the fault).
    if fault != "trial:0":
        assert result.report.trials_loaded > 0


def test_resume_after_merge_fault_loads_everything(tmp_path):
    # A fault at "merge" interrupts after every trial persisted: the
    # resume must compute nothing at all.
    clean_bytes, _ = _clean_reference("E1")
    _reset_world()
    with pytest.raises(FaultInjected):
        with fault_injection("merge"):
            run_sweep("E1", "quick", backend="scalar", store_root=tmp_path)
    _reset_world()
    result = run_sweep(
        "E1", "quick", backend="scalar", store_root=tmp_path, resume=True
    )
    assert result.report.trials_computed == 0
    assert table_to_json(result.table) == clean_bytes


def test_repeated_kills_then_resume(tmp_path):
    # Crash, resume into another crash further along, resume again: the
    # store accretes monotonically and the final table is still exact.
    clean_bytes, clean_spans = _clean_reference("E1")
    for fault in ["trial:3", "trial:11", "call:4"]:
        _reset_world()
        with pytest.raises(FaultInjected):
            with fault_injection(fault):
                run_sweep("E1", "quick", backend="scalar", store_root=tmp_path)
    _reset_world()
    result = run_sweep(
        "E1", "quick", backend="scalar", store_root=tmp_path, resume=True
    )
    assert table_to_json(result.table) == clean_bytes
    assert _span_counts() == clean_spans


def test_completed_sweep_resumes_from_stored_table(tmp_path):
    clean_bytes, _ = _clean_reference("E1")
    _reset_world()
    first = run_sweep("E1", "quick", backend="scalar", store_root=tmp_path)
    assert table_to_json(first.table) == clean_bytes
    _reset_world()
    again = run_sweep(
        "E1", "quick", backend="scalar", store_root=tmp_path, resume=True
    )
    assert again.report.trials_computed == 0
    assert table_to_json(again.table) == clean_bytes


def test_resume_with_empty_store_is_an_error(tmp_path):
    with pytest.raises(ExperimentError, match="nothing to resume"):
        run_sweep("E1", "quick", backend="scalar", store_root=tmp_path, resume=True)


def test_resume_rejects_sharding(tmp_path):
    with pytest.raises(ExperimentError, match="coordinator"):
        run_sweep(
            "E1",
            "quick",
            backend="scalar",
            store_root=tmp_path,
            resume=True,
            shard=ShardSpec(0, 2),
        )


# ---------------------------------------------------------------------------
# Sharded runs merging to the serial result
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("count", [2, 3])
def test_shards_merge_to_serial_result(tmp_path, count):
    clean_bytes, clean_spans = _clean_reference("E6")
    for index in range(count):
        _reset_world()
        piece = run_sweep(
            "E6",
            "quick",
            backend="scalar",
            store_root=tmp_path,
            shard=ShardSpec(index, count),
        )
        assert piece.table is None
        assert piece.report.trials_computed > 0
    _reset_world()
    merged = run_sweep("E6", "quick", backend="scalar", store_root=tmp_path)
    assert merged.report.trials_computed == 0
    assert merged.report.trials_borrowed == 0
    assert table_to_json(merged.table) == clean_bytes
    assert _span_counts() == clean_spans


def test_sequential_shards_load_instead_of_borrowing(tmp_path):
    # Shard 1 running after shard 0 against the same store should load
    # shard 0's records rather than recompute ("borrow") them.
    _reset_world()
    first = run_sweep(
        "E6", "quick", backend="scalar", store_root=tmp_path, shard=ShardSpec(0, 2)
    )
    _reset_world()
    second = run_sweep(
        "E6", "quick", backend="scalar", store_root=tmp_path, shard=ShardSpec(1, 2)
    )
    assert second.report.trials_loaded == first.report.trials_computed
    assert second.report.trials_borrowed == 0


def test_shard_killed_then_rerun_then_merge(tmp_path):
    clean_bytes, _ = _clean_reference("E6")
    _reset_world()
    with pytest.raises(FaultInjected):
        with fault_injection("trial:4"):
            run_sweep(
                "E6",
                "quick",
                backend="scalar",
                store_root=tmp_path,
                shard=ShardSpec(0, 2),
            )
    for index in range(2):
        _reset_world()
        run_sweep(
            "E6",
            "quick",
            backend="scalar",
            store_root=tmp_path,
            shard=ShardSpec(index, 2),
        )
    _reset_world()
    merged = run_sweep("E6", "quick", backend="scalar", store_root=tmp_path)
    assert table_to_json(merged.table) == clean_bytes


# ---------------------------------------------------------------------------
# Store damage between runs
# ---------------------------------------------------------------------------
def test_truncated_trial_record_is_recomputed(tmp_path):
    clean_bytes, _ = _clean_reference("E1")
    _reset_world()
    with pytest.raises(FaultInjected):
        with fault_injection("merge"):
            run_sweep("E1", "quick", backend="scalar", store_root=tmp_path)
    # Maul one record the way a torn write would: keep a prefix.
    recipe = SweepRecipe("E1", "quick", backend="scalar")
    store = SweepStore(tmp_path, recipe)
    name = SweepStore.trial_name(0, 0)
    path = store.artifacts._path(name)
    path.write_bytes(path.read_bytes()[:20])
    _reset_world()
    result = run_sweep(
        "E1", "quick", backend="scalar", store_root=tmp_path, resume=True
    )
    assert result.report.trials_computed == 1
    assert table_to_json(result.table) == clean_bytes


def test_status_reports_progress(tmp_path):
    _reset_world()
    with pytest.raises(FaultInjected):
        with fault_injection("trial:5"):
            run_sweep("E1", "quick", backend="scalar", store_root=tmp_path)
    status = sweep_status("E1", "quick", backend="scalar", store_root=tmp_path)
    assert status["trials_completed"] == 5
    assert status["table_stored"] is False
    _reset_world()
    run_sweep("E1", "quick", backend="scalar", store_root=tmp_path, resume=True)
    status = sweep_status("E1", "quick", backend="scalar", store_root=tmp_path)
    assert status["table_stored"] is True


# ---------------------------------------------------------------------------
# Real process deaths through the CLI (kill / exit modes)
# ---------------------------------------------------------------------------
def _run_cli(*argv: str, env_extra=None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("REPRO_FAULT_AT", None)
    env.pop("REPRO_JOBS", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", "sweep", *argv],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_cli_sigkill_then_resume_bytes_match_clean_run(tmp_path):
    store = str(tmp_path / "store")
    killed = _run_cli(
        "E1", "--store", store, env_extra={"REPRO_FAULT_AT": "trial:2:kill"}
    )
    assert killed.returncode == -9
    resumed_path = tmp_path / "resumed.json"
    resumed = _run_cli(
        "E1", "--store", store, "--resume", "--export", str(resumed_path)
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "loaded=2" in resumed.stdout
    clean_path = tmp_path / "clean.json"
    clean = _run_cli(
        "E1", "--store", str(tmp_path / "clean-store"), "--export", str(clean_path)
    )
    assert clean.returncode == 0, clean.stderr
    assert resumed_path.read_bytes() == clean_path.read_bytes()


def test_cli_exit_mode_statuses(tmp_path):
    store = str(tmp_path / "store")
    died = _run_cli(
        "E1", "--store", store, env_extra={"REPRO_FAULT_AT": "call:1:exit"}
    )
    assert died.returncode == 70
    raised = _run_cli(
        "E1",
        "--store",
        str(tmp_path / "other"),
        env_extra={"REPRO_FAULT_AT": "merge:raise"},
    )
    assert raised.returncode == 2
    assert "injected fault at merge" in raised.stderr


def test_cli_kill_after_table_stored_resumes_instantly(tmp_path):
    # "final" fires after the table is persisted: the resume finds the
    # finished sweep and runs zero trials.
    store = str(tmp_path / "store")
    killed = _run_cli(
        "E1", "--store", store, env_extra={"REPRO_FAULT_AT": "final:kill"}
    )
    assert killed.returncode == -9
    resumed = _run_cli("E1", "--store", store, "--resume")
    assert resumed.returncode == 0, resumed.stderr
    assert "computed=0 loaded=0" in resumed.stdout


def test_cli_parallel_sweep_matches_serial(tmp_path):
    # REPRO_JOBS inside a sweep uses the pool path for pending trials;
    # the canonical bytes must not notice.
    serial_path = tmp_path / "serial.json"
    pooled_path = tmp_path / "pooled.json"
    serial = _run_cli(
        "E1", "--store", str(tmp_path / "s1"), "--export", str(serial_path)
    )
    assert serial.returncode == 0, serial.stderr
    pooled = _run_cli(
        "E1",
        "--store",
        str(tmp_path / "s2"),
        "--export",
        str(pooled_path),
        env_extra={"REPRO_JOBS": "2"},
    )
    assert pooled.returncode == 0, pooled.stderr
    assert serial_path.read_bytes() == pooled_path.read_bytes()
