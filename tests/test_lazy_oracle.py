"""Tests for the deferred-decision (lazy) guessing-game oracle."""

import random

import pytest

from repro.errors import GameError
from repro.lowerbounds.game import GuessingGame
from repro.lowerbounds.lazy_oracle import LazyGuessingGame


class TestMechanics:
    def test_membership_stable_across_queries(self):
        game = LazyGuessingGame(4, 0.5, seed=1)
        first = game.guess({(0, 4)})
        second = game.guess({(0, 4)})
        # Hitting twice: the first may hit; after a hit the column is dead,
        # and a non-member stays a non-member.
        assert second <= first or second == frozenset()

    def test_column_elimination(self):
        game = LazyGuessingGame(4, 1.0, seed=0)  # everything is a target
        hits = game.guess({(0, 4)})
        assert hits == {(0, 4)}
        # Column 4 is dead: further target pairs there no longer hit.
        assert game.guess({(1, 4)}) == frozenset()

    def test_done_with_p_zero(self):
        game = LazyGuessingGame(5, 0.0, seed=0)
        assert game.done  # resolving flips all coins: no targets anywhere

    def test_done_requires_all_columns_hit_with_p_one(self):
        m = 3
        game = LazyGuessingGame(m, 1.0, seed=0)
        assert not game.done
        for b in range(m, 2 * m):
            game.guess({(0, b)})
        assert game.done

    def test_budget_enforced(self):
        game = LazyGuessingGame(3, 0.5, seed=0)
        seven = {(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5), (2, 3)}
        with pytest.raises(GameError):
            game.guess(seven)

    def test_range_checked(self):
        game = LazyGuessingGame(3, 0.5, seed=0)
        with pytest.raises(GameError):
            game.guess({(0, 0)})

    def test_validation(self):
        with pytest.raises(GameError):
            LazyGuessingGame(0, 0.5, seed=0)
        with pytest.raises(GameError):
            LazyGuessingGame(3, 1.5, seed=0)

    def test_fresh_pair_guess_counter(self):
        game = LazyGuessingGame(4, 0.0, seed=0)
        game.guess({(0, 4), (1, 4)})
        game.guess({(0, 4), (2, 4)})
        assert game.fresh_pair_guesses == 3

    def test_coins_flipped_lazily(self):
        game = LazyGuessingGame(50, 0.5, seed=0)
        game.guess({(0, 50)})
        assert game.coins_flipped == 1


class TestEagerEquivalence:
    """Coupling: same seed ⇒ the lazy game behaves exactly like the eager
    game whose target is the lazy oracle's fully-resolved membership."""

    @pytest.mark.parametrize("seed", range(5))
    def test_coupled_hit_sequences(self, seed):
        m, p = 6, 0.3
        reference = LazyGuessingGame(m, p, seed=seed)
        target = reference.eager_target()
        lazy = LazyGuessingGame(m, p, seed=seed)
        eager = GuessingGame(m, target)
        rng = random.Random(seed + 100)
        for _ in range(12):
            guesses = {
                (rng.randrange(m), m + rng.randrange(m)) for _ in range(2 * m)
            }
            guesses = set(list(guesses)[: 2 * m])
            assert lazy.guess(guesses) == eager.guess(guesses)
            assert lazy.done == eager.done
            if eager.done:
                break

    @pytest.mark.parametrize("seed", range(3))
    def test_resolution_order_irrelevant(self, seed):
        # Flipping coins in guess order vs all-up-front gives the same
        # membership function.
        m, p = 5, 0.4
        a = LazyGuessingGame(m, p, seed=seed)
        a.guess({(0, 5), (2, 7)})
        up_front = LazyGuessingGame(m, p, seed=seed).eager_target()
        assert a.eager_target() == up_front


class TestGeometricStructure:
    def test_fresh_guess_success_rate_is_p(self):
        # Over many fresh guesses, the fraction of 'target' coins ~ p.
        m, p = 40, 0.25
        game = LazyGuessingGame(m, p, seed=7)
        flips = 0
        targets = 0
        for a in range(m):
            for b in range(m, 2 * m):
                flips += 1
                if game._flip((a, b)):
                    targets += 1
        assert abs(targets / flips - p) < 0.05

    def test_expected_rounds_scale_with_inverse_p(self):
        import statistics

        def mean_rounds(p):
            values = []
            for seed in range(10):
                m = 16
                game = LazyGuessingGame(m, p, seed=seed)
                rng = random.Random(seed)
                while not game.done and game.rounds < 10_000:
                    guesses = {
                        (rng.randrange(m), m + rng.randrange(m))
                        for _ in range(2 * m)
                    }
                    game.guess(set(list(guesses)[: 2 * m]))
                values.append(game.rounds)
            return statistics.fmean(values)

        assert mean_rounds(0.1) > 1.5 * mean_rounds(0.4)
