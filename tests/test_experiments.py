"""Integration tests for the experiment registry and harness."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import all_experiments, get_experiment
from repro.experiments.harness import (
    ExperimentTable,
    map_trials,
    register,
    run_experiment,
    seeds_for,
    trial_jobs,
    validate_profile,
)


class TestHarness:
    def test_registry_covers_design_index(self):
        expected = {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
            "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17",
        }
        assert set(all_experiments()) == expected

    def test_get_experiment_unknown_id(self):
        with pytest.raises(ExperimentError):
            get_experiment("E99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError):
            register("E1")(lambda profile: None)

    def test_seeds_for_profiles(self):
        assert len(list(seeds_for("quick", quick=3))) == 3
        assert len(list(seeds_for("full", full=7))) == 7
        with pytest.raises(ExperimentError):
            seeds_for("enormous")

    def test_table_column_access(self):
        table = ExperimentTable(
            experiment_id="X",
            title="t",
            columns=["a", "b"],
            rows=[{"a": 1, "b": 2}, {"a": 3, "b": 4}],
        )
        assert table.column("a") == [1, 3]
        with pytest.raises(ExperimentError):
            table.column("missing")

    def test_table_column_rejects_incomplete_rows(self):
        table = ExperimentTable(
            experiment_id="X",
            title="t",
            columns=["a", "b"],
            rows=[{"a": 1, "b": 2}, {"a": 3}],  # second row is missing "b"
        )
        assert table.column("a") == [1, 3]
        with pytest.raises(ExperimentError, match="missing column 'b'"):
            table.column("b")

    def test_validate_profile(self):
        assert validate_profile("quick") == "quick"
        assert validate_profile("full") == "full"
        with pytest.raises(ExperimentError, match="unknown profile"):
            validate_profile("fulll")

    def test_run_experiment_rejects_unknown_profile_early(self):
        # Must fail on the profile before touching the experiment itself.
        with pytest.raises(ExperimentError, match="unknown profile"):
            run_experiment("E1", profile="enormous")
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("E99", profile="quick")

    def test_run_experiment_checked(self):
        table = run_experiment("E6", profile="quick", checked=True)
        assert table.experiment_id == "E6"
        assert table.rows

    def test_trial_jobs_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert trial_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "")
        assert trial_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert trial_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert trial_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert trial_jobs() >= 1
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert trial_jobs() >= 1
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ExperimentError, match="REPRO_JOBS"):
            trial_jobs()
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(ExperimentError, match="REPRO_JOBS"):
            trial_jobs()

    def test_map_trials_serial_and_parallel_agree(self, monkeypatch):
        items = list(range(8))
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        serial = map_trials(abs, items)
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = map_trials(abs, items)  # abs is picklable
        assert serial == parallel == items

    def test_map_trials_preserves_order(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert map_trials(str, [3, 1, 2]) == ["3", "1", "2"]

    @pytest.mark.parametrize("experiment_id", ["E1", "E5", "E12"])
    def test_parallel_rows_bit_identical_to_serial(self, experiment_id, monkeypatch):
        # Three newly parallelized experiments (a guessing-game seed
        # ladder, a gossip seed ladder, and a config fan-out) must produce
        # bit-identical tables under REPRO_JOBS=2.
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        serial = run_experiment(experiment_id, "quick")
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = run_experiment(experiment_id, "quick")
        assert parallel.rows == serial.rows
        assert parallel.conclusion == serial.conclusion

    def test_table_renders(self):
        table = ExperimentTable(
            experiment_id="X",
            title="demo",
            columns=["v", "ok"],
            rows=[{"v": 1.23456, "ok": True}],
            expectation="something",
            conclusion="held",
        )
        text = table.to_text()
        assert "demo" in text
        assert "1.23" in text
        assert "yes" in text
        assert "expectation: something" in text
        assert "conclusion: held" in text


class TestFastExperimentsRun:
    """Smoke-run the cheap experiments end to end (quick profile)."""

    @pytest.mark.parametrize(
        "experiment_id", ["E1", "E2", "E12", "E13", "E16", "E17"]
    )
    def test_runs_and_fills_table(self, experiment_id):
        table = get_experiment(experiment_id)("quick")
        assert table.experiment_id == experiment_id
        assert table.rows
        assert table.columns
        for row in table.rows:
            for column in table.columns:
                assert column in row

    def test_e1_linear_shape(self):
        table = get_experiment("E1")("quick")
        adaptive = table.column("adaptive_rounds")
        assert adaptive[-1] > adaptive[0]

    def test_e12_structure_holds(self):
        table = get_experiment("E12")("quick")
        assert all(table.column("regular(3s-1)"))
        assert all(table.column("ell*_is_ell"))

    def test_e16_star_congestion_shape(self):
        table = get_experiment("E16")("quick")
        star_rows = {r["cap"]: r for r in table.rows if "star" in r["graph"]}
        assert star_rows[1]["rounds"] > star_rows["unbounded"]["rounds"]

    def test_e17_payload_shape(self):
        table = get_experiment("E17")("quick")
        assert all(v <= 2 for v in table.column("pushpull_max_payload"))
        assert all(v >= 8 for v in table.column("dtg_max_payload"))
