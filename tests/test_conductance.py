"""Tests for weighted conductance (Definitions 1-2, Eq. 3)."""

import math
import random

import pytest

from repro.conductance.edge_induced import StronglyEdgeInducedGraph
from repro.conductance.exact import cut_conductance, exact_conductance_profile
from repro.conductance.sweep import (
    sweep_conductance,
    sweep_conductance_cut,
    sweep_conductance_profile,
)
from repro.conductance.weighted import conductance_profile, weighted_conductance
from repro.errors import ConductanceError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.graphs.latency_models import uniform_latency


def two_triangles_bridge(bridge_latency: int = 1) -> LatencyGraph:
    """Two triangles joined by a single bridge edge 2-3."""
    return LatencyGraph(
        edges=[
            (0, 1, 1),
            (1, 2, 1),
            (0, 2, 1),
            (3, 4, 1),
            (4, 5, 1),
            (3, 5, 1),
            (2, 3, bridge_latency),
        ]
    )


class TestCutConductance:
    def test_bridge_cut(self):
        g = two_triangles_bridge()
        # Cut {0,1,2}: one crossing edge, volume 7 each side.
        assert cut_conductance(g, [0, 1, 2]) == pytest.approx(1 / 7)

    def test_latency_filter_zeroes_slow_cut(self):
        g = two_triangles_bridge(bridge_latency=5)
        assert cut_conductance(g, [0, 1, 2], max_latency=1) == 0.0
        assert cut_conductance(g, [0, 1, 2], max_latency=5) == pytest.approx(1 / 7)

    def test_uses_smaller_volume_side(self):
        g = generators.star(5)
        # U = {leaf}: volume 1, crossing 1.
        assert cut_conductance(g, [1]) == 1.0

    def test_rejects_empty_and_full(self):
        g = two_triangles_bridge()
        with pytest.raises(ConductanceError):
            cut_conductance(g, [])
        with pytest.raises(ConductanceError):
            cut_conductance(g, g.nodes())

    def test_rejects_foreign_nodes(self):
        g = two_triangles_bridge()
        with pytest.raises(ConductanceError):
            cut_conductance(g, [0, 99])


class TestExactProfile:
    def test_clique_unit_latency(self):
        g = generators.clique(6)
        profile = exact_conductance_profile(g)
        # Clique conductance minimized by half split: (n/2)^2 / (n/2 * (n-1)).
        assert profile[1] == pytest.approx(9 / 15)

    def test_bridge_graph_min_cut_found(self):
        g = two_triangles_bridge()
        profile = exact_conductance_profile(g)
        assert profile[1] == pytest.approx(1 / 7)

    def test_profile_monotone_in_latency(self):
        g = two_triangles_bridge(bridge_latency=4)
        g.add_edge(0, 4, 9)
        profile = exact_conductance_profile(g, latencies=[1, 4, 9])
        assert profile[1] <= profile[4] <= profile[9]

    def test_explicit_latency_thresholds(self):
        g = two_triangles_bridge(bridge_latency=4)
        profile = exact_conductance_profile(g, latencies=[2])
        assert profile[2] == 0.0  # bridge not counted below latency 4

    def test_node_limit_enforced(self):
        g = generators.clique(6)
        with pytest.raises(ConductanceError):
            exact_conductance_profile(g, node_limit=4)

    def test_too_small_graph_rejected(self):
        with pytest.raises(ConductanceError):
            exact_conductance_profile(LatencyGraph(nodes=[0]))

    def test_edgeless_rejected(self):
        with pytest.raises(ConductanceError):
            exact_conductance_profile(LatencyGraph(nodes=[0, 1]))

    def test_path_conductance(self):
        g = generators.path(4)
        profile = exact_conductance_profile(g)
        # Cut in the middle: 1 crossing / volume 3.
        assert profile[1] == pytest.approx(1 / 3)


class TestSweep:
    def test_matches_exact_on_bridge_graph(self):
        g = two_triangles_bridge()
        exact = exact_conductance_profile(g)[1]
        approx = sweep_conductance(g, 1)
        assert approx == pytest.approx(exact)

    def test_upper_bounds_exact(self):
        # Sweep cuts are real cuts, so sweep >= exact always.
        for seed in range(3):
            g = generators.erdos_renyi(12, 0.3, rng=random.Random(seed))
            exact = exact_conductance_profile(g)[1]
            approx = sweep_conductance(g, 1, rng=random.Random(seed))
            assert approx >= exact - 1e-12

    def test_detects_disconnected_g_ell(self):
        g = two_triangles_bridge(bridge_latency=10)
        assert sweep_conductance(g, 1) == 0.0

    def test_profile_shape(self):
        g = two_triangles_bridge(bridge_latency=10)
        profile = sweep_conductance_profile(g)
        assert set(profile) == {1, 10}
        assert profile[1] == 0.0
        assert profile[10] > 0.0

    def test_rejects_tiny_graph(self):
        with pytest.raises(ConductanceError):
            sweep_conductance(LatencyGraph(nodes=[0]), 1)

    def test_deterministic_by_default(self):
        g = generators.erdos_renyi(15, 0.3, rng=random.Random(7))
        assert sweep_conductance(g, 1) == sweep_conductance(g, 1)

    def test_witness_cut_realizes_value(self):
        # The sweep value is not just a number: it is the conductance of a
        # concrete cut, re-scorable by the exact evaluator.
        g = generators.erdos_renyi(
            15, 0.3, latency_model=uniform_latency(1, 4), rng=random.Random(7)
        )
        for ell in g.distinct_latencies():
            result = sweep_conductance_cut(g, ell)
            assert result.cut
            assert cut_conductance(g, result.cut, max_latency=ell) == result.value

    def test_subset_profile_reproduces_full_profile(self):
        # Regression: each threshold derives its candidate rng from a stable
        # base seed, so phi_ell never depends on which OTHER thresholds were
        # requested.  (The old code threaded one rng through all thresholds.)
        g = generators.erdos_renyi(
            16, 0.3, latency_model=uniform_latency(1, 6), rng=random.Random(3)
        )
        full = sweep_conductance_profile(g)
        thresholds = sorted(full)
        subset = sweep_conductance_profile(g, latencies=thresholds[1::2])
        for ell, value in subset.items():
            assert value == full[ell]

    def test_subset_profile_reproduces_with_caller_rng(self):
        # A caller-supplied rng contributes exactly one draw (the base
        # seed), so the subset-restriction property must survive it too.
        g = generators.erdos_renyi(
            16, 0.3, latency_model=uniform_latency(1, 6), rng=random.Random(3)
        )
        full = sweep_conductance_profile(g, rng=random.Random(99))
        thresholds = sorted(full)
        subset = sweep_conductance_profile(
            g, latencies=thresholds[::2], rng=random.Random(99)
        )
        for ell, value in subset.items():
            assert value == full[ell]

    def test_profile_matches_single_threshold_calls(self):
        # The profile's shared per-graph arrays must not change any value
        # relative to independent single-threshold sweeps with the same
        # derived rng.
        g = generators.erdos_renyi(
            14, 0.35, latency_model=uniform_latency(1, 5), rng=random.Random(11)
        )
        profile = sweep_conductance_profile(g)
        for ell, value in profile.items():
            single = sweep_conductance(g, ell, rng=random.Random(f"sweep:0:{ell}"))
            assert single == value

    def test_isolated_vertex(self):
        # Degree conventions must agree between the spectral embedding and
        # the prefix evaluation: an isolated vertex has zero volume (raw
        # Definition 1 degrees) and coordinate 0 in the embedding, so it
        # can neither crash the solver nor perturb any phi value.
        g = two_triangles_bridge()
        g.add_node("isolated")
        value = sweep_conductance(g, 1)
        exact = exact_conductance_profile(g)[1]
        assert value == exact == pytest.approx(1 / 7)
        witness = sweep_conductance_cut(g, 1)
        assert cut_conductance(g, witness.cut, max_latency=1) == witness.value

    def test_isolated_vertex_profile(self):
        g = two_triangles_bridge(bridge_latency=4)
        g.add_node("isolated")
        profile = sweep_conductance_profile(g)
        assert set(profile) == {1, 4}
        assert profile[1] == 0.0
        assert profile[4] > 0.0


class TestWeightedConductance:
    def test_unit_latency_matches_classical(self):
        g = generators.clique(6)
        result = weighted_conductance(g)
        assert result.critical_latency == 1
        assert result.phi_star == pytest.approx(9 / 15)

    def test_critical_latency_selects_slow_but_connected(self):
        # Two triangles + slow bridge: phi_1 = 0 (disconnected), so the
        # critical latency must be the bridge latency.
        g = two_triangles_bridge(bridge_latency=6)
        result = weighted_conductance(g)
        assert result.critical_latency == 6
        assert result.phi_star == pytest.approx(1 / 7)
        assert result.dissemination_bound == pytest.approx(6 * 7)

    def test_critical_latency_prefers_fast_backbone(self):
        # A clique with one super-slow extra edge: the fast clique is
        # already well connected, so ell* = 1.
        g = generators.clique(8)
        g.add_edge(0, 1, 100)  # overwrite one edge as slow
        result = weighted_conductance(g)
        assert result.critical_latency == 1

    def test_profile_and_result_consistent(self):
        g = two_triangles_bridge(bridge_latency=3)
        result = weighted_conductance(g)
        profile = conductance_profile(g)
        assert result.profile == profile
        best = max(profile, key=lambda ell: profile[ell] / ell)
        assert result.critical_latency == best

    def test_zero_conductance_gives_infinite_bound(self):
        g = two_triangles_bridge()
        from repro.conductance.weighted import WeightedConductance

        wc = WeightedConductance(
            phi_star=0.0, critical_latency=1, profile={1: 0.0}, method="exact"
        )
        assert wc.dissemination_bound == math.inf

    def test_method_auto_switches_to_sweep(self):
        g = generators.erdos_renyi(25, 0.3, rng=random.Random(0))
        result = weighted_conductance(g, method="auto", exact_limit=10)
        assert result.method == "sweep"

    def test_unknown_method_rejected(self):
        g = generators.clique(4)
        with pytest.raises(ConductanceError):
            conductance_profile(g, method="magic")

    def test_sweep_and_exact_agree_on_small_graphs(self):
        for seed in range(3):
            g = generators.ring_of_cliques(3, 4, inter_latency=4, rng=random.Random(seed))
            exact = weighted_conductance(g, method="exact")
            approx = weighted_conductance(g, method="sweep")
            # Sweep upper-bounds; both must pick a sensible critical latency.
            assert approx.phi_star >= exact.phi_star - 1e-12
            assert approx.critical_latency in exact.profile


class TestStronglyEdgeInduced:
    def test_degree_preserved(self):
        g = two_triangles_bridge(bridge_latency=9)
        induced = StronglyEdgeInducedGraph(g, max_latency=1)
        for node in g.nodes():
            assert induced.degree(node) == g.degree(node)

    def test_multiplicities(self):
        g = two_triangles_bridge(bridge_latency=9)
        induced = StronglyEdgeInducedGraph(g, max_latency=1)
        assert induced.multiplicity(0, 1) == 1
        assert induced.multiplicity(2, 3) == 0  # slow edge dropped
        assert induced.multiplicity(2, 2) == 1  # self loop replaces it
        assert induced.multiplicity(0, 0) == 0

    def test_conductance_identity_phi_ell(self):
        # The key identity behind Theorem 12: phi(G_ell) == phi_ell(G).
        g = two_triangles_bridge(bridge_latency=9)
        induced = StronglyEdgeInducedGraph(g, max_latency=1)
        for cut in ([0, 1, 2], [0, 1], [0, 3, 4]):
            assert induced.conductance(cut) == pytest.approx(
                cut_conductance(g, cut, max_latency=1)
            )

    def test_sample_contact_distribution(self):
        g = two_triangles_bridge(bridge_latency=9)
        induced = StronglyEdgeInducedGraph(g, max_latency=1)
        rng = random.Random(0)
        draws = [induced.sample_contact(2, rng) for _ in range(3000)]
        # Node 2 has 3 edges, 2 fast: None (self loop) ~ 1/3 of the time.
        loop_fraction = draws.count(None) / len(draws)
        assert 0.25 < loop_fraction < 0.42
        assert set(draws) == {None, 0, 1}

    def test_rejects_bad_latency(self):
        with pytest.raises(ConductanceError):
            StronglyEdgeInducedGraph(two_triangles_bridge(), max_latency=0)

    def test_rejects_bad_cut(self):
        g = two_triangles_bridge()
        induced = StronglyEdgeInducedGraph(g, max_latency=1)
        with pytest.raises(ConductanceError):
            induced.conductance([])
