"""Tests for ``repro.obs.report`` and the report/regress/version CLI.

The headline property is the issue's acceptance criterion: ``repro
report`` output is **byte-deterministic** across two invocations modulo
lines carrying manifest timestamp fields (``captured_at``).
"""

import json
import random

import pytest

from repro.cli import main
from repro.errors import ObservabilityError
from repro.experiments import artifacts
from repro.graphs import generators
from repro.obs import MemorySink, Recorder, reset_metrics, reset_spans
from repro.obs.regress import compare_benchmarks
from repro.obs.report import (
    TIMESTAMP_FIELDS,
    ascii_sparkline,
    experiment_report,
    markdown_table,
    render_experiment_report,
    render_regression_section,
    render_trace_report,
)
from repro.obs.traces import Trace
from repro.protocols.push_pull import run_push_pull


def _strip_timestamps(text):
    return [
        line
        for line in text.splitlines()
        if not any(field in line for field in TIMESTAMP_FIELDS)
    ]


def _fresh_observability_state():
    # An experiment rerun must start from the same observability state the
    # first run saw: empty artifact cache, zeroed metrics and spans.
    artifacts.clear()
    reset_metrics()
    reset_spans()


class TestBuildingBlocks:
    def test_markdown_table_formats_cells(self):
        table = markdown_table(
            ("a", "b", "c"), [(True, 0.123456789, "text"), (False, 2, None)]
        )
        lines = table.splitlines()
        assert lines[0] == "| a | b | c |"
        assert lines[1] == "|---|---|---|"
        assert lines[2] == "| yes | 0.123457 | text |"
        assert lines[3] == "| no | 2 | None |"

    def test_sparkline_scales_to_max(self):
        line = ascii_sparkline([0, 1, 2, 4])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_sparkline_downsamples_to_width(self):
        assert len(ascii_sparkline(list(range(1000)), width=60)) == 60

    def test_sparkline_edge_cases(self):
        assert ascii_sparkline([]) == "(empty)"
        assert ascii_sparkline([0, 0]) == "▁▁"


class TestTraceReport:
    def _trace(self):
        graph = generators.ring_of_cliques(
            3, 4, inter_latency=5, rng=random.Random(0)
        )
        memory = MemorySink()
        with Recorder(memory) as recorder:
            run_push_pull(graph, seed=1, recorder=recorder)
        return Trace.from_events(memory.events)

    def test_sections_present(self):
        text = render_trace_report(self._trace(), title="demo")
        assert text.startswith("# repro report — demo\n")
        for heading in (
            "## Stats",
            "## Events by kind",
            "## Coverage curve",
            "## Delivery latency distribution",
            "## Activated-edge churn",
        ):
            assert heading in text
        assert "| initiate |" in text
        assert text.endswith("\n")

    def test_trace_report_is_deterministic(self):
        assert render_trace_report(self._trace()) == render_trace_report(
            self._trace()
        )


class TestExperimentReport:
    def test_byte_deterministic_modulo_captured_at(self):
        _fresh_observability_state()
        first = experiment_report("E5", profile="quick")
        _fresh_observability_state()
        second = experiment_report("E5", profile="quick")
        assert _strip_timestamps(first) == _strip_timestamps(second)

    def test_sections_and_gate(self):
        _fresh_observability_state()
        text = experiment_report("E5", profile="quick")
        for heading in (
            "## Result",
            "## Manifest",
            "## Metrics",
            "## Span profile",
            "## Regression gate",
        ):
            assert heading in text
        assert "sim_runs_total" in text
        assert "Wall-clock columns omitted" in text
        assert "**Overall verdict: ok**" in text

    def test_no_gate_omits_regression_section(self):
        _fresh_observability_state()
        text = experiment_report("E5", profile="quick", gate=False)
        assert "## Regression gate" not in text

    def test_timings_opt_in(self):
        _fresh_observability_state()
        text = experiment_report("E5", profile="quick", include_timings=True)
        assert "total s" in text
        assert "Wall-clock columns omitted" not in text

    def test_render_handles_minimal_table(self):
        class FakeTable:
            experiment_id = "EX"
            title = "fake"
            columns = ("n", "rounds")
            rows = [{"n": 4, "rounds": 7}]
            expectation = ""
            conclusion = ""
            manifest = None
            metrics = None

        text = render_experiment_report(FakeTable())
        assert "# repro report — EX: fake" in text
        assert "| 4 | 7 |" in text
        assert "## Manifest" not in text
        assert "## Metrics" not in text


class TestRegressionSection:
    def test_rows_and_overall_verdict(self):
        report = compare_benchmarks(
            {"workloads": {"w": {"seconds": 4.0}}},
            {"workloads": {"w": {"seconds": 1.0}}},
            suite="demo",
        )
        lines = render_regression_section([report])
        text = "\n".join(lines)
        assert "| demo | w | REGRESSED | 4.00x |" in text
        assert "**Overall verdict: REGRESSED**" in text

    def test_empty_reports_hint(self):
        text = "\n".join(render_regression_section([]))
        assert "no benchmark reports found" in text


class TestCli:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_trace_stats(self, capsys):
        code = main(
            ["trace", "--topology", "clique", "--n", "6", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max round:" in out
        assert "deliver" in out
        assert "delivery latency (rounds):" in out

    def test_report_experiment_to_file(self, tmp_path, capsys):
        _fresh_observability_state()
        out_path = tmp_path / "report.md"
        code = main(
            ["report", "E5", "--profile", "quick", "--no-gate",
             "--output", str(out_path)]
        )
        assert code == 0
        text = out_path.read_text("utf-8")
        assert text.startswith("# repro report — E5")
        assert str(out_path) in capsys.readouterr().out

    def test_report_trace_file(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        main(
            ["trace", "--topology", "clique", "--n", "6",
             "--jsonl", str(trace_path), "--limit", "0"]
        )
        capsys.readouterr()
        code = main(["report", "--trace", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "## Events by kind" in out
        assert "## Coverage curve" in out

    def test_report_without_target_errors(self, capsys):
        code = main(["report"])
        assert code == 2
        assert "needs an experiment id" in capsys.readouterr().err

    def test_regress_cli_ok_and_json(self, tmp_path, capsys):
        json_path = tmp_path / "verdict.json"
        code = main(["regress", "--suite", "all", "--json", str(json_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "regression gate [engine]: OK" in out
        payload = json.loads(json_path.read_text("utf-8"))
        assert all(
            entry["schema"] == "repro-regression-gate/1" for entry in payload
        )

    def test_regress_cli_fails_on_injected_slowdown(self, tmp_path, capsys, monkeypatch):
        import repro.benchmarking as benchmarking

        slow = tmp_path / "BENCH_engine.json"
        base = tmp_path / "BENCH_engine_baseline.json"
        base.write_text(
            json.dumps({"workloads": {"w": {"seconds": 1.0}}}), "utf-8"
        )
        slow.write_text(
            json.dumps({"workloads": {"w": {"seconds": 2.0}}}), "utf-8"
        )
        monkeypatch.setattr(benchmarking, "BENCH_PATH", slow)
        monkeypatch.setattr(benchmarking, "BASELINE_PATH", base)
        code = main(["regress", "--suite", "engine"])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out
