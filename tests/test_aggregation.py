"""Tests for gossip-based exact aggregation."""

import random

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.protocols.aggregation import AGGREGATE_OPS, run_aggregate


def value_map(graph, seed=0):
    rng = random.Random(seed)
    return {node: rng.randint(0, 1000) for node in graph.nodes()}


class TestPushPullBackend:
    def test_min_on_clique(self):
        g = generators.clique(10)
        values = value_map(g)
        report = run_aggregate(g, values, op="min", seed=1)
        assert report.value == min(values.values())
        assert report.consistent

    def test_all_named_ops(self):
        g = generators.grid(3, 3)
        values = value_map(g, seed=3)
        data = list(values.values())
        expected = {
            "min": min(data),
            "max": max(data),
            "sum": sum(data),
            "count": len(data),
            "mean": sum(data) / len(data),
        }
        for name in AGGREGATE_OPS:
            report = run_aggregate(g, values, op=name, seed=2)
            assert report.value == expected[name], name
            assert report.consistent

    def test_custom_operator(self):
        g = generators.cycle(6)
        values = {node: node + 1 for node in g.nodes()}
        product = run_aggregate(
            g, values, op=lambda vs: __import__("math").prod(vs), seed=0
        )
        assert product.value == 720

    def test_latencies_respected(self):
        g_fast = generators.ring_of_cliques(3, 4, inter_latency=1)
        g_slow = generators.ring_of_cliques(3, 4, inter_latency=20)
        fast = run_aggregate(g_fast, value_map(g_fast), seed=4)
        slow = run_aggregate(g_slow, value_map(g_slow), seed=4)
        assert slow.rounds > fast.rounds

    def test_missing_values_rejected(self):
        g = generators.clique(4)
        with pytest.raises(ProtocolError):
            run_aggregate(g, {0: 1}, seed=0)

    def test_unknown_protocol_rejected(self):
        g = generators.clique(4)
        with pytest.raises(ProtocolError):
            run_aggregate(g, value_map(g), protocol="carrier-pigeon")

    def test_budget_guard(self):
        g = generators.ring_of_cliques(3, 4, inter_latency=50)
        with pytest.raises(ProtocolError):
            run_aggregate(g, value_map(g), seed=0, max_rounds=3)


class TestSelfTerminatingBackends:
    def test_general_eid_backend(self):
        g = generators.grid(3, 3)
        values = value_map(g, seed=5)
        report = run_aggregate(g, values, op="max", protocol="general-eid", seed=5)
        assert report.value == max(values.values())
        assert report.consistent

    def test_path_discovery_backend(self):
        g = generators.ring_of_cliques(3, 3, inter_latency=2)
        values = value_map(g, seed=6)
        report = run_aggregate(
            g, values, op="sum", protocol="path-discovery", seed=6
        )
        assert report.value == sum(values.values())
        assert report.consistent

    def test_backends_agree(self):
        g = generators.grid(3, 3)
        values = value_map(g, seed=7)
        results = {
            backend: run_aggregate(g, values, op="mean", protocol=backend, seed=7).value
            for backend in ("push-pull", "general-eid", "path-discovery")
        }
        assert len(set(results.values())) == 1
