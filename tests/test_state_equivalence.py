"""Bitset-backed NetworkState vs the original set-backed implementation.

The production :class:`~repro.sim.state.NetworkState` stores rumor sets as
interned bitmasks with copy-on-write snapshots; the pre-optimization
hash-set layout is preserved as
:class:`~repro.testing.reference.ReferenceNetworkState`.  These tests run
random operation sequences against both backends in lockstep and demand
identical observations — rumors, counts, notes, payloads — including when
each backend merges payloads *built by the other one* (the foreign-payload
interning path).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.state import NetworkState, Payload
from repro.testing.reference import ReferenceNetworkState

N_NODES = 5
RUMORS = ["r0", "r1", ("tagged", 2), 3, frozenset({"x"})]

_node = st.integers(min_value=0, max_value=N_NODES - 1)
_rumor = st.integers(min_value=0, max_value=len(RUMORS) - 1)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), _node, _rumor),
        st.tuples(st.just("merge"), _node, _node),
        st.tuples(st.just("cross_merge"), _node, _node),
        st.tuples(st.just("publish"), _node, st.integers(min_value=0, max_value=5)),
        st.tuples(st.just("seed_self")),
        st.tuples(st.just("clear_notes")),
    ),
    max_size=40,
)


def _assert_observations_equal(fast: NetworkState, ref: ReferenceNetworkState):
    for node in range(N_NODES):
        assert fast.rumors(node) == ref.rumors(node)
        assert fast.rumor_count(node) == ref.rumor_count(node)
        assert fast.snapshot(node) == ref.snapshot(node)
        assert fast.known_note_origins(node) == ref.known_note_origins(node)
        for origin in range(N_NODES):
            assert fast.note_of(node, origin) == ref.note_of(node, origin)
        for rumor in RUMORS:
            assert fast.knows(node, rumor) == ref.knows(node, rumor)
    for rumor in RUMORS + list(range(N_NODES)):
        assert fast.count_knowing(rumor) == ref.count_knowing(rumor)


class TestBackendEquivalence:
    @given(_ops)
    @settings(max_examples=200, deadline=None)
    def test_operation_sequences_agree(self, ops):
        fast = NetworkState(range(N_NODES))
        ref = ReferenceNetworkState(range(N_NODES))
        for op in ops:
            kind = op[0]
            if kind == "add":
                _, node, index = op
                fast.add_rumor(node, RUMORS[index])
                ref.add_rumor(node, RUMORS[index])
            elif kind == "merge":
                _, dst, src = op
                changed_fast = fast.merge(dst, fast.snapshot(src))
                changed_ref = ref.merge(dst, ref.snapshot(src))
                assert changed_fast == changed_ref
            elif kind == "cross_merge":
                # Each backend merges the payload the OTHER backend built:
                # the bitset state takes the interning fallback, the set
                # state materializes the lazy bitmask view.
                _, dst, src = op
                changed_fast = fast.merge(dst, ref.snapshot(src))
                changed_ref = ref.merge(dst, fast.snapshot(src))
                assert changed_fast == changed_ref
            elif kind == "publish":
                _, node, value = op
                fast.publish_note(node, value=value)
                ref.publish_note(node, value=value)
            elif kind == "seed_self":
                fast.seed_self_rumors()
                ref.seed_self_rumors()
            else:
                fast.clear_notes()
                ref.clear_notes()
        _assert_observations_equal(fast, ref)

    def test_unknown_rumor_observations(self):
        fast = NetworkState(range(N_NODES))
        ref = ReferenceNetworkState(range(N_NODES))
        assert fast.knows(0, "never-seen") == ref.knows(0, "never-seen") is False
        assert fast.count_knowing("never-seen") == ref.count_knowing("never-seen") == 0


class TestCopyOnWriteSnapshots:
    def test_snapshot_cached_until_change(self):
        state = NetworkState(range(3))
        state.add_rumor(0, "a")
        first = state.snapshot(0)
        assert state.snapshot(0) is first
        state.add_rumor(0, "b")
        assert state.snapshot(0) is not first

    def test_old_snapshot_immutable_after_change(self):
        state = NetworkState(range(3))
        state.add_rumor(0, "a")
        payload = state.snapshot(0)
        state.add_rumor(0, "b")
        state.publish_note(0, flag=True)
        assert payload.rumors == frozenset({"a"})
        assert payload.rumor_count == 1
        assert payload.notes == ()

    def test_merge_of_unchanged_neighbor_is_cached_payload(self):
        state = NetworkState(range(2))
        state.seed_self_rumors()
        payload = state.snapshot(1)
        assert state.merge(0, payload) is True
        # Node 1 did not change, so its snapshot is still the same object.
        assert state.snapshot(1) is payload
        assert state.merge(0, state.snapshot(1)) is False

    def test_foreign_payload_with_new_tokens(self):
        state = NetworkState(range(2))
        assert state.merge(0, Payload(rumors=frozenset({"new", "tokens"}))) is True
        assert state.rumors(0) == frozenset({"new", "tokens"})
        assert state.count_knowing("new") == 1
