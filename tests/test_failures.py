"""Tests for failure injection and the restricted engine models."""

import random

import pytest

from repro.errors import SimulationError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.base import per_node_rng_factory
from repro.protocols.push_pull import PushPullProtocol
from repro.protocols.robustness import (
    run_push_pull_under_failures,
    run_spanner_pipeline_under_failures,
)
from repro.sim.engine import Engine, NodeProtocol
from repro.sim.failures import (
    CompositeFailure,
    CrashSchedule,
    EdgeOutage,
    MessageLoss,
    NoFailures,
)
from repro.sim.runner import broadcast_complete
from repro.sim.state import NetworkState


class ContactForever(NodeProtocol):
    def __init__(self, target):
        self.target = target
        self.deliveries = 0

    def on_round(self, ctx):
        return self.target

    def on_deliver(self, ctx, delivery):
        self.deliveries += 1


class TestFailureModels:
    def test_no_failures(self):
        model = NoFailures()
        assert not model.node_crashed(0, 100)
        assert not model.exchange_lost(0, 1, 100)

    def test_message_loss_extremes(self):
        never = MessageLoss(0.0)
        always = MessageLoss(1.0)
        assert not any(never.exchange_lost(0, 1, r) for r in range(50))
        assert all(always.exchange_lost(0, 1, r) for r in range(50))

    def test_message_loss_rejects_bad_p(self):
        with pytest.raises(SimulationError):
            MessageLoss(1.5)

    def test_message_loss_rate(self):
        model = MessageLoss(0.3, seed=1)
        losses = sum(model.exchange_lost(0, 1, r) for r in range(2000))
        assert 0.25 < losses / 2000 < 0.35

    def test_crash_schedule(self):
        model = CrashSchedule({5: 10})
        assert not model.node_crashed(5, 9)
        assert model.node_crashed(5, 10)
        assert model.node_crashed(5, 99)
        assert not model.node_crashed(6, 99)

    def test_crash_schedule_rejects_negative(self):
        with pytest.raises(SimulationError):
            CrashSchedule({0: -1})

    def test_random_crashes_protects(self):
        rng = random.Random(0)
        model = CrashSchedule.random_crashes(
            range(10), count=5, by_round=3, rng=rng, protect=[0]
        )
        assert not model.node_crashed(0, 100)
        crashed = sum(model.node_crashed(v, 100) for v in range(10))
        assert crashed == 5

    def test_random_crashes_too_many(self):
        with pytest.raises(SimulationError):
            CrashSchedule.random_crashes(range(3), 4, 1, random.Random(0))

    def test_edge_outage_window(self):
        model = EdgeOutage({(0, 1): [(5, 10)]})
        assert not model.exchange_lost(0, 1, 4)
        assert model.exchange_lost(0, 1, 5)
        assert model.exchange_lost(1, 0, 9)  # unordered edge key
        assert not model.exchange_lost(0, 1, 10)

    def test_edge_outage_rejects_bad_interval(self):
        with pytest.raises(SimulationError):
            EdgeOutage({(0, 1): [(5, 5)]})

    def test_composite(self):
        model = CompositeFailure([CrashSchedule({1: 0}), MessageLoss(0.0)])
        assert model.node_crashed(1, 0)
        assert not model.node_crashed(2, 0)
        assert not model.exchange_lost(0, 2, 0)


class TestEngineWithFailures:
    def test_lost_exchange_never_delivers(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        engine = Engine(
            g,
            lambda v: ContactForever(1 if v == 0 else None),
            failure_model=MessageLoss(1.0),
        )
        for _ in range(10):
            engine.step()
        assert engine.protocol(0).deliveries == 0
        assert engine.metrics.lost_exchanges == 10
        assert engine.metrics.exchanges == 0

    def test_crashed_node_does_not_initiate(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        engine = Engine(
            g,
            lambda v: ContactForever(1 if v == 0 else 0),
            failure_model=CrashSchedule({0: 0}),
        )
        engine.step()
        assert all(u != 0 for u, _ in engine.last_initiations)

    def test_crashed_responder_voids_exchange(self):
        g = LatencyGraph(edges=[(0, 1, 5)])
        state = NetworkState([0, 1])
        state.add_rumor(0, "x")
        engine = Engine(
            g,
            lambda v: ContactForever(1 if v == 0 else None),
            state=state,
            failure_model=CrashSchedule({1: 2}),  # crashes mid-flight
        )
        for _ in range(8):
            engine.step()
        assert not state.knows(1, "x")
        assert engine.protocol(0).deliveries == 0

    def test_crashed_initiator_still_informs_responder(self):
        g = LatencyGraph(edges=[(0, 1, 5)])
        state = NetworkState([0, 1])
        state.add_rumor(0, "x")

        def factory(v):
            return ContactForever(1) if v == 0 else ContactForever(None)

        engine = Engine(
            g, factory, state=state, failure_model=CrashSchedule({0: 2})
        )
        for _ in range(8):
            engine.step()
        # The round-0 request was in flight; node 1 still receives it.
        assert state.knows(1, "x")
        assert engine.protocol(1).deliveries >= 1
        assert engine.protocol(0).deliveries == 0

    def test_push_pull_completes_under_moderate_loss(self):
        g = generators.clique(12)
        result = run_push_pull_under_failures(
            g, MessageLoss(0.3, seed=2), source=0, seed=2
        )
        assert result.complete
        assert result.lost_exchanges > 0

    def test_push_pull_routes_around_crashes(self):
        g = generators.clique(12)
        crashes = CrashSchedule.random_crashes(
            g.nodes(), 4, by_round=2, rng=random.Random(3), protect=[0]
        )
        result = run_push_pull_under_failures(g, crashes, source=0, seed=3)
        assert result.complete
        assert result.survivors == 8

    def test_spanner_pipeline_no_failures_completes(self):
        g = generators.ring_of_cliques(3, 4, inter_latency=2, rng=random.Random(0))
        result = run_spanner_pipeline_under_failures(g, None, source=0, seed=0)
        assert result.complete

    def test_spanner_pipeline_brittle_under_adversarial_crashes(self):
        # Sever one node's spanner neighborhood: it stays richly connected
        # in G (push--pull reaches it) but the pipeline cannot.
        from repro.protocols.robustness import spanner_cut_crashes

        g = generators.ring_of_cliques(5, 6, inter_latency=4, rng=random.Random(0))
        crashes, victim, crash_count = spanner_cut_crashes(g, seed=0, source=0)
        assert crash_count >= 1
        sp = run_spanner_pipeline_under_failures(g, crashes, source=0, seed=0)
        pp = run_push_pull_under_failures(
            g, crashes, source=0, seed=0, max_rounds=5000
        )
        assert sp.coverage < 1.0
        assert pp.coverage == 1.0

    def test_spanner_pipeline_survives_random_crashes(self):
        # Random crashes rarely hurt: the spanner has Ω(n log n) edges.
        g = generators.ring_of_cliques(5, 6, inter_latency=4, rng=random.Random(0))
        crashes = CrashSchedule.random_crashes(
            g.nodes(), 3, by_round=2, rng=random.Random(1), protect=[0]
        )
        sp = run_spanner_pipeline_under_failures(g, crashes, source=0, seed=1)
        assert sp.coverage >= 0.9


class TestBoundedInDegree:
    def test_cap_validation(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        with pytest.raises(SimulationError):
            Engine(g, lambda v: ContactForever(None), max_incoming_per_round=0)

    def test_star_congestion(self):
        star = generators.star(16)

        def run(cap):
            rumor = ("rumor", 0)
            state = NetworkState(star.nodes())
            state.add_rumor(0, rumor)
            make_rng = per_node_rng_factory(4)
            engine = Engine(
                star,
                lambda node: PushPullProtocol(make_rng(node)),
                state=state,
                max_incoming_per_round=cap,
            )
            done = broadcast_complete(rumor)
            while not done(engine) and engine.round < 1000:
                engine.step()
            return engine

        unbounded = run(None)
        capped = run(1)
        assert capped.round > unbounded.round
        assert capped.metrics.rejected_initiations > 0
        assert unbounded.metrics.rejected_initiations == 0

    def test_cap_still_completes(self):
        g = generators.random_regular(16, 4, rng=random.Random(5))
        rumor = ("rumor", 0)
        state = NetworkState(g.nodes())
        state.add_rumor(0, rumor)
        make_rng = per_node_rng_factory(5)
        engine = Engine(
            g,
            lambda node: PushPullProtocol(make_rng(node)),
            state=state,
            max_incoming_per_round=1,
        )
        done = broadcast_complete(rumor)
        while not done(engine) and engine.round < 5000:
            engine.step()
        assert done(engine)


class TestMessageAccounting:
    def test_tokens_counted(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        state = NetworkState([0, 1])
        state.add_rumor(0, "a")
        state.add_rumor(0, "b")
        state.add_rumor(1, "c")
        engine = Engine(
            g, lambda v: ContactForever(1 if v == 0 else None), state=state
        )
        engine.step()
        assert engine.metrics.rumor_tokens_sent == 3  # {a,b} + {c}
        assert engine.metrics.max_payload_rumors == 2

    def test_ping_exchanges_count_zero_tokens(self):
        from repro.protocols.discovery import LatencyDiscoveryProtocol

        g = LatencyGraph(edges=[(0, 1, 1)])
        state = NetworkState([0, 1])
        state.add_rumor(0, "a")
        engine = Engine(g, lambda v: LatencyDiscoveryProtocol(2), state=state)
        for _ in range(5):
            engine.step()
        assert engine.metrics.rumor_tokens_sent == 0
