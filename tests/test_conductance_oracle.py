"""Brute-force oracle for weighted conductance (Definitions 1 and 2).

An independent from-scratch implementation — ``itertools.combinations``
over vertex subsets, no bitmasks, no shared helpers — recomputes the
conductance profile and ``φ*``/``ℓ*`` and must agree exactly with
``conductance/exact.py`` and ``conductance/weighted.py`` on every small
graph (n <= 10).  Any disagreement means one of the two implementations
misreads Definition 1 (e.g. volumes taken in ``G_ℓ`` instead of ``G``).
"""

import itertools
import random

from hypothesis import given, settings

from repro.conductance.exact import cut_conductance, exact_conductance_profile
from repro.conductance.sweep import sweep_conductance_cut, sweep_conductance_profile
from repro.conductance.weighted import weighted_conductance
from repro.graphs.generators import clique, dumbbell, ring_of_cliques, star
from repro.testing import connected_latency_graphs


def brute_force_profile(graph):
    """{ℓ: φ_ℓ} by enumerating every proper nonempty subset, per Definition 1."""
    nodes = graph.nodes()
    degree = {node: graph.degree(node) for node in nodes}
    total_volume = sum(degree.values())
    edge_list = list(graph.edges())  # (u, v, latency) triples
    profile = {}
    for ell in graph.distinct_latencies():
        best = float("inf")
        for size in range(1, len(nodes)):
            for subset in itertools.combinations(nodes, size):
                inside = set(subset)
                vol_in = sum(degree[node] for node in inside)
                denominator = min(vol_in, total_volume - vol_in)
                if denominator == 0:
                    continue
                crossing = sum(
                    1
                    for u, v, latency in edge_list
                    if latency <= ell and (u in inside) != (v in inside)
                )
                best = min(best, crossing / denominator)
        profile[ell] = 0.0 if best == float("inf") else best
    return profile


def brute_force_phi_star(profile):
    """(φ*, ℓ*) maximizing φ_ℓ/ℓ, ties toward the smaller latency."""
    best_ell = min(profile, key=lambda ell: (-profile[ell] / ell, ell))
    return profile[best_ell], best_ell


class TestAgainstNamedGraphs:
    def test_clique(self):
        graph = clique(6)
        assert exact_conductance_profile(graph) == brute_force_profile(graph)

    def test_star(self):
        graph = star(7)
        assert exact_conductance_profile(graph) == brute_force_profile(graph)

    def test_ring_of_cliques(self):
        graph = ring_of_cliques(3, 3, inter_latency=4)
        oracle = brute_force_profile(graph)
        assert exact_conductance_profile(graph) == oracle
        result = weighted_conductance(graph, method="exact")
        phi_star, critical = brute_force_phi_star(oracle)
        assert result.phi_star == phi_star
        assert result.critical_latency == critical

    def test_dumbbell(self):
        graph = dumbbell(4, bridge_length=1, bridge_latency=6)
        oracle = brute_force_profile(graph)
        assert exact_conductance_profile(graph) == oracle


class TestAgainstRandomGraphs:
    @given(connected_latency_graphs(max_nodes=8, max_latency=6))
    @settings(max_examples=20, deadline=None)
    def test_profile_matches_oracle(self, graph):
        assert exact_conductance_profile(graph) == brute_force_profile(graph)

    @given(connected_latency_graphs(max_nodes=8, max_latency=6))
    @settings(max_examples=20, deadline=None)
    def test_phi_star_matches_oracle(self, graph):
        oracle = brute_force_profile(graph)
        phi_star, critical = brute_force_phi_star(oracle)
        result = weighted_conductance(graph, method="exact")
        assert result.phi_star == phi_star
        assert result.critical_latency == critical
        assert result.profile == oracle

    @given(connected_latency_graphs(max_nodes=8, max_latency=6))
    @settings(max_examples=20, deadline=None)
    def test_vectorized_sweep_against_exact_all_thresholds(self, graph):
        """The vectorized sweep vs ``exact.py`` across *all* distinct thresholds.

        Exactness contract (the sweep is an upper bound, not a minimizer):
        at every threshold the sweep's witness cut, re-scored by the exact
        evaluator, must reproduce the sweep value bit-for-bit, and the
        value must never undercut the exact optimum — float-exact
        comparisons, no tolerance.
        """
        exact = exact_conductance_profile(graph)
        profile = sweep_conductance_profile(graph)
        assert set(profile) == set(exact)
        for ell in graph.distinct_latencies():
            result = sweep_conductance_cut(
                graph, ell, rng=random.Random(f"sweep:0:{ell}")
            )
            # Profile and single-threshold entry points agree exactly.
            assert profile[ell] == result.value
            # The witness realizes the reported value in exact arithmetic.
            if result.cut:
                assert (
                    cut_conductance(graph, result.cut, max_latency=ell)
                    == result.value
                )
            else:
                assert result.value == 0.0
            # Never below the true optimum (sweep cuts are real cuts).
            assert result.value >= exact[ell]

    @given(connected_latency_graphs(min_nodes=3, max_nodes=10, max_latency=6))
    @settings(max_examples=15, deadline=None)
    def test_single_cut_conductance_matches_oracle(self, graph):
        nodes = graph.nodes()
        rng = random.Random(graph.num_edges)
        size = rng.randint(1, len(nodes) - 1)
        subset = rng.sample(nodes, size)
        for ell in graph.distinct_latencies():
            inside = set(subset)
            degree = {node: graph.degree(node) for node in nodes}
            vol_in = sum(degree[node] for node in inside)
            vol_out = sum(degree.values()) - vol_in
            if min(vol_in, vol_out) == 0:
                continue
            crossing = sum(
                1
                for u, v, latency in graph.edges()
                if latency <= ell and (u in inside) != (v in inside)
            )
            expected = crossing / min(vol_in, vol_out)
            assert cut_conductance(graph, subset, max_latency=ell) == expected
