"""Tests for the ℓ-DTG local broadcast protocol (Algorithm 5)."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.base import PhaseRunner
from repro.protocols.dtg import LDTGProtocol, ldtg_factory, run_ldtg
from repro.sim.runner import local_broadcast_complete


class TestRunLDTG:
    def test_local_broadcast_on_clique(self):
        result = run_ldtg(generators.clique(12), max_latency=1)
        assert result.complete

    def test_local_broadcast_on_grid(self):
        result = run_ldtg(generators.grid(4, 4), max_latency=1)
        assert result.complete

    def test_local_broadcast_on_star(self):
        result = run_ldtg(generators.star(15), max_latency=1)
        assert result.complete

    def test_respects_latency_threshold(self):
        # Edges above ell are ignored: their neighbors are not covered.
        g = LatencyGraph(edges=[(0, 1, 1), (1, 2, 9)])
        runner = PhaseRunner(g)
        runner.run_phase(ldtg_factory(g, 1), latencies_known=True)
        assert runner.state.knows(0, 1)
        assert not runner.state.knows(1, 2)  # slow edge never used

    def test_ell_scaling_linear(self):
        g1 = generators.clique(10, latency_model=lambda u, v, r: 1)
        g4 = generators.clique(10, latency_model=lambda u, v, r: 4)
        r1 = run_ldtg(g1, max_latency=1)
        r4 = run_ldtg(g4, max_latency=4)
        assert r4.rounds == pytest.approx(4 * r1.rounds, rel=0.35)

    def test_mixed_latencies_covered_up_to_ell(self):
        g = generators.ring_of_cliques(3, 4, inter_latency=3)
        result = run_ldtg(g, max_latency=3)
        assert result.complete  # covers both latency-1 and latency-3 edges

    def test_rejects_bad_latency(self):
        with pytest.raises(ProtocolError):
            LDTGProtocol(0)


class TestRunTags:
    def test_rerun_without_tag_is_noop(self):
        g = generators.clique(8)
        runner = PhaseRunner(g)
        runner.run_phase(ldtg_factory(g, 1), latencies_known=True)
        first = runner.total_rounds
        runner.run_phase(ldtg_factory(g, 1), latencies_known=True)
        # Loop condition already met: one bookkeeping round, no exchanges.
        assert runner.total_rounds <= first + 1

    def test_rerun_with_fresh_tag_does_work(self):
        g = generators.clique(8)
        runner = PhaseRunner(g)
        runner.run_phase(ldtg_factory(g, 1, run_tag="a"), latencies_known=True)
        first = runner.total_rounds
        runner.run_phase(ldtg_factory(g, 1, run_tag="b"), latencies_known=True)
        assert runner.total_rounds > first

    def test_tagged_reruns_relay_fresh_tokens(self):
        # A second tagged run re-exchanges with every neighbor, relaying its
        # fresh tokens (and with them, everything learned meanwhile).
        g = generators.path(5)
        runner = PhaseRunner(g)
        runner.run_phase(ldtg_factory(g, 1, run_tag="r0"), latencies_known=True)
        assert runner.state.knows(0, 1)
        assert not runner.state.knows(0, ("r1", 1))
        runner.run_phase(ldtg_factory(g, 1, run_tag="r1"), latencies_known=True)
        assert runner.state.knows(0, ("r1", 1))
        assert runner.state.knows(4, ("r1", 3))

    def test_tag_tokens_present(self):
        g = generators.path(3)
        runner = PhaseRunner(g)
        runner.run_phase(ldtg_factory(g, 1, run_tag="t"), latencies_known=True)
        assert ("t", 1) in runner.state.rumors(0)


class TestMeasuredNeighborMode:
    def test_explicit_fast_neighbors(self):
        g = LatencyGraph(edges=[(0, 1, 2), (1, 2, 2), (0, 2, 9)])
        measured = {
            0: {1: 2},
            1: {0: 2, 2: 2},
            2: {1: 2},
        }
        runner = PhaseRunner(g)
        # latencies_known=False: protocols must not touch the oracle.
        runner.run_phase(
            ldtg_factory(g, 2, measured=measured), latencies_known=False
        )
        view = type("V", (), {"graph": g, "state": runner.state})()
        assert local_broadcast_complete(2)(view)

    def test_missing_measurements_mean_no_fast_neighbors(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        runner = PhaseRunner(g)
        runner.run_phase(
            ldtg_factory(g, 1, measured={}), latencies_known=False
        )
        assert not runner.state.knows(0, 1)


class TestIterationAccounting:
    def test_iterations_bounded_by_degree(self):
        g = generators.clique(16)
        runner = PhaseRunner(g)
        engine = runner.run_phase(ldtg_factory(g, 1), latencies_known=True)
        for node in g.nodes():
            protocol = engine.protocol(node)
            assert isinstance(protocol, LDTGProtocol)
            assert protocol.iterations_used <= g.degree(node)

    def test_iterations_grow_with_clique_size(self):
        def max_iterations(n):
            g = generators.clique(n)
            runner = PhaseRunner(g)
            engine = runner.run_phase(ldtg_factory(g, 1), latencies_known=True)
            return max(engine.protocol(v).iterations_used for v in g.nodes())

        assert max_iterations(32) >= max_iterations(8)
