"""Tests for the blocking-communication enforcement mode (Appendix E claim)."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.base import per_node_rng_factory
from repro.protocols.dtg import ldtg_factory
from repro.protocols.discovery import LatencyDiscoveryProtocol
from repro.protocols.push_pull import PushPullProtocol
from repro.sim.engine import Engine
from repro.sim.state import NetworkState


def run_blocking_phase(graph, factory, max_rounds=100_000, latencies_known=True):
    state = NetworkState(graph.nodes())
    state.seed_self_rumors()
    engine = Engine(
        graph,
        factory,
        state=state,
        latencies_known=latencies_known,
        enforce_blocking=True,
    )
    while not engine.all_done():
        if engine.round >= max_rounds:
            raise AssertionError("phase did not terminate")
        engine.step()
    return engine


class TestEnforcement:
    def test_push_pull_violates_blocking_on_slow_edges(self):
        # Push--pull initiates every round; with latency > 1 the second
        # initiation overlaps the first — non-blocking by design.
        g = LatencyGraph(edges=[(0, 1, 5)])
        make_rng = per_node_rng_factory(0)
        engine = Engine(
            g,
            lambda node: PushPullProtocol(make_rng(node)),
            enforce_blocking=True,
        )
        with pytest.raises(ProtocolError):
            for _ in range(3):
                engine.step()

    def test_push_pull_fine_on_unit_latency(self):
        # With latency 1 every exchange delivers before the next round, so
        # even push--pull satisfies the blocking discipline.
        g = generators.clique(6)
        make_rng = per_node_rng_factory(1)
        engine = Engine(
            g,
            lambda node: PushPullProtocol(make_rng(node)),
            enforce_blocking=True,
        )
        for _ in range(20):
            engine.step()  # must not raise

    def test_discovery_probes_violate_blocking(self):
        # The discovery phase fires one probe per round without waiting —
        # it needs the non-blocking model (Section 4.2 assumes it).
        g = generators.star(5, latency_model=lambda u, v, r: 4)
        engine = Engine(
            g,
            lambda node: LatencyDiscoveryProtocol(6),
            enforce_blocking=True,
        )
        with pytest.raises(ProtocolError):
            for _ in range(10):
                engine.step()


class TestAppendixEClaim:
    """Appendix E: the T(k) machinery works under blocking communication."""

    @pytest.mark.parametrize(
        "graph",
        [
            generators.clique(8),
            generators.grid(3, 3),
            generators.ring_of_cliques(3, 4, inter_latency=3),
        ],
        ids=["clique", "grid", "weighted-ring"],
    )
    def test_ldtg_is_blocking_compatible(self, graph):
        ell = graph.max_latency()
        run_blocking_phase(graph, ldtg_factory(graph, ell))

    def test_t_sequence_is_blocking_compatible(self):
        from repro.protocols.path_discovery import t_sequence

        graph = generators.ring_of_cliques(3, 4, inter_latency=2)
        for step, ell in enumerate(t_sequence(4)):
            run_blocking_phase(
                graph, ldtg_factory(graph, ell, run_tag=f"b{step}")
            )

    def test_rr_broadcast_is_blocking_compatible_on_unit_spanner(self):
        # RR initiates every round; under blocking it only works when all
        # used edges have latency 1 (otherwise it needs the non-blocking
        # model, which EID assumes).
        from repro.protocols.rr_broadcast import rr_broadcast_factory
        from repro.protocols.spanner import baswana_sen_spanner
        import random

        graph = generators.clique(8)  # unit latencies
        spanner = baswana_sen_spanner(graph, 3, random.Random(0))
        run_blocking_phase(graph, rr_broadcast_factory(spanner, 1))
