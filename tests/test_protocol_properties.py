"""Hypothesis property tests at the protocol level.

These drive whole protocols over randomized connected graphs and check the
invariants that must hold on *every* instance: completion, monotone
knowledge, coverage guarantees, termination-check soundness.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.base import PhaseRunner
from repro.protocols.dtg import ldtg_factory
from repro.protocols.eid import run_termination_check
from repro.protocols.path_discovery import run_t_sequence
from repro.protocols.push_pull import run_push_pull
from repro.protocols.spanner import baswana_sen_spanner
from repro.sim.runner import local_broadcast_complete


@st.composite
def small_connected_graphs(draw, max_nodes=9, max_latency=4):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = LatencyGraph(nodes=range(n))
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        parent = order[rng.randrange(i)]
        graph.add_edge(order[i], parent, rng.randint(1, max_latency))
    for _ in range(draw(st.integers(min_value=0, max_value=n))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.randint(1, max_latency))
    return graph


class TestPushPullProperties:
    @given(small_connected_graphs(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_broadcast_always_completes(self, graph, seed):
        result = run_push_pull(graph, seed=seed, max_rounds=50_000)
        assert result.complete

    @given(small_connected_graphs(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_informed_history_monotone(self, graph, seed):
        result = run_push_pull(
            graph, seed=seed, track_progress=True, max_rounds=50_000
        )
        history = result.informed_history
        assert all(a <= b for a, b in zip(history, history[1:]))
        assert history[-1] == graph.num_nodes

    @given(small_connected_graphs(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_rounds_at_least_source_eccentricity(self, graph, seed):
        source = graph.nodes()[0]
        result = run_push_pull(graph, source=source, seed=seed, max_rounds=50_000)
        eccentricity = max(graph.weighted_distances(source).values())
        assert result.rounds >= eccentricity


class TestDTGProperties:
    @given(small_connected_graphs())
    @settings(max_examples=20, deadline=None)
    def test_full_latency_dtg_covers_all_neighbors(self, graph):
        ell = graph.max_latency()
        runner = PhaseRunner(graph)
        runner.run_phase(ldtg_factory(graph, ell), latencies_known=True)
        view = type("V", (), {"graph": graph, "state": runner.state})()
        assert local_broadcast_complete(ell)(view)

    @given(small_connected_graphs(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_partial_latency_dtg_covers_fast_neighbors(self, graph, ell):
        runner = PhaseRunner(graph)
        runner.run_phase(ldtg_factory(graph, ell), latencies_known=True)
        view = type("V", (), {"graph": graph, "state": runner.state})()
        assert local_broadcast_complete(ell)(view)


class TestTSequenceProperties:
    @given(small_connected_graphs())
    @settings(max_examples=15, deadline=None)
    def test_lemma24_coverage(self, graph):
        diameter = graph.weighted_diameter()
        k = 1 << max(0, (diameter - 1).bit_length())
        runner = PhaseRunner(graph)
        run_t_sequence(runner, graph, k, tag="prop")
        everyone = set(graph.nodes())
        assert all(everyone <= runner.state.rumors(v) for v in everyone)


class TestSpannerProperties:
    @given(small_connected_graphs(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_restriction_never_adds_edges(self, graph, k):
        spanner = baswana_sen_spanner(graph, k, random.Random(0))
        full = spanner.undirected_edges()
        for threshold in graph.distinct_latencies():
            assert spanner.restrict(threshold).undirected_edges() <= full


class TestTerminationCheckSoundness:
    @given(small_connected_graphs())
    @settings(max_examples=15, deadline=None)
    def test_never_passes_when_incomplete(self, graph):
        # A fresh state (nobody knows any neighbor) must always fail.
        runner = PhaseRunner(graph)
        diameter = graph.weighted_diameter()

        def broadcast(tag):
            for i in range(graph.num_nodes):
                runner.run_phase(
                    ldtg_factory(graph, diameter, run_tag=f"{tag}:{i}"),
                    latencies_known=True,
                )

        everyone = set(graph.nodes())
        complete_before = all(
            everyone <= runner.state.rumors(v) for v in everyone
        )
        report = run_termination_check(
            runner, graph, diameter, broadcast, iteration_tag="sound"
        )
        if report.passed:
            # Passing is only sound once dissemination is complete *at
            # verdict time* (the check's broadcasts may have finished it).
            assert all(everyone <= runner.state.rumors(v) for v in everyone)
        if not complete_before and graph.num_nodes > 2:
            # With a fresh state the flags must have fired somewhere.
            assert not all(report.verdicts.values()) or all(
                everyone <= runner.state.rumors(v) for v in everyone
            )
