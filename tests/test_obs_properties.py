"""Property tests for the observability layer.

Two families of guarantees:

* **Non-perturbation** — attaching a :class:`~repro.obs.Recorder` (and/or
  telemetry) must not change a run at all: same rounds, same exchanges,
  same final knowledge, same metrics, for plain runs, crash schedules,
  and the restricted in-degree model.  The engine only *observes* through
  the recorder; any divergence means an instrumentation site leaked into
  the semantics.
* **Telemetry shape** — the coverage curve is monotone non-decreasing,
  starts at the single informed source, and (on complete runs) ends at
  ``n``; the in-flight curve has one sample per executed round.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import CounterSink, MemorySink, Recorder
from repro.protocols.base import per_node_rng_factory
from repro.protocols.push_pull import PushPullProtocol, run_push_pull
from repro.sim.engine import Engine
from repro.sim.runner import broadcast_complete, run_until_complete
from repro.sim.state import NetworkState
from repro.testing.strategies import (
    connected_latency_graphs,
    crash_schedules,
    engine_configs,
    seeds,
)


def _broadcast_state(graph):
    source = graph.nodes()[0]
    rumor = ("rumor", source)
    state = NetworkState(graph.nodes())
    state.add_rumor(source, rumor)
    return source, rumor, state


def _run_engine(graph, seed, rounds, *, recorder=None, failure_model=None, config=None):
    """Step a push--pull engine ``rounds`` times; return the engine."""
    _, _, state = _broadcast_state(graph)
    make_rng = per_node_rng_factory(seed)
    engine = Engine(
        graph,
        lambda node: PushPullProtocol(make_rng(node)),
        state=state,
        failure_model=failure_model,
        recorder=recorder,
        **(config or {}),
    )
    for _ in range(rounds):
        engine.step()
    return engine


def _assert_same_run(plain, observed):
    assert plain.round == observed.round
    assert plain.metrics == observed.metrics
    for node in plain.graph.nodes():
        assert plain.state.rumors(node) == observed.state.rumors(node)


class TestRecorderNonPerturbation:
    @given(connected_latency_graphs(max_nodes=10), seeds())
    @settings(max_examples=25, deadline=None)
    def test_push_pull_result_identical(self, graph, seed):
        plain = run_push_pull(graph, seed=seed, max_rounds=5_000)
        with Recorder(MemorySink(), CounterSink()) as recorder:
            observed = run_push_pull(
                graph,
                seed=seed,
                max_rounds=5_000,
                telemetry=True,
                recorder=recorder,
            )
        # telemetry is a compare=False field; dataclass equality checks
        # rounds, completion, exchanges, messages, protocol, history, and
        # blocked_initiations.
        assert plain == observed
        assert recorder.events_recorded > 0

    @given(
        connected_latency_graphs(min_nodes=3, max_nodes=10),
        seeds(100),
        st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_crash_schedule_run_identical(self, graph, seed, data):
        source = graph.nodes()[0]
        crashes = data.draw(crash_schedules(graph.nodes(), protect=[source]))
        plain = _run_engine(graph, seed, rounds=20, failure_model=crashes)
        observed = _run_engine(
            graph, seed, rounds=20, failure_model=crashes,
            recorder=Recorder.in_memory(),
        )
        _assert_same_run(plain, observed)

    @given(connected_latency_graphs(max_nodes=10), seeds(100), engine_configs())
    @settings(max_examples=20, deadline=None)
    def test_engine_variants_run_identical(self, graph, seed, config):
        """Snapshot-semantics and bounded in-degree variants are unperturbed."""
        plain = _run_engine(graph, seed, rounds=15, config=config)
        observed = _run_engine(
            graph, seed, rounds=15, config=config, recorder=Recorder.ring(64)
        )
        _assert_same_run(plain, observed)


class TestTelemetryShape:
    @given(connected_latency_graphs(max_nodes=12), seeds())
    @settings(max_examples=25, deadline=None)
    def test_coverage_curve_monotone_one_to_n(self, graph, seed):
        result = run_push_pull(
            graph, seed=seed, max_rounds=5_000, track_progress=True, telemetry=True
        )
        curve = result.telemetry.coverage_curve
        assert curve is not None
        # One sample before every executed round plus the final state.
        assert len(curve) == result.rounds + 1
        assert curve[0] == 1
        assert curve[-1] == graph.num_nodes
        assert all(a <= b for a, b in zip(curve, curve[1:]))
        in_flight = result.telemetry.in_flight_curve
        assert len(in_flight) == result.rounds
        assert all(v >= 0 for v in in_flight)
        assert result.telemetry.max_in_flight() == (max(in_flight) if in_flight else 0)

    @given(
        connected_latency_graphs(min_nodes=3, max_nodes=10),
        seeds(100),
        st.data(),
    )
    @settings(max_examples=15, deadline=None)
    def test_coverage_curve_monotone_under_crashes(self, graph, seed, data):
        source, rumor, state = _broadcast_state(graph)
        crashes = data.draw(crash_schedules(graph.nodes(), protect=[source]))
        make_rng = per_node_rng_factory(seed)
        engine = Engine(
            graph,
            lambda node: PushPullProtocol(make_rng(node)),
            state=state,
            failure_model=crashes,
        )
        result = run_until_complete(
            engine,
            lambda e: e.round >= 25,
            protocol_name="push-pull[crashy]",
            track_progress=lambda e: e.state.count_knowing(rumor),
            telemetry=True,
            allow_incomplete=True,
        )
        curve = result.telemetry.coverage_curve
        assert curve[0] == 1
        assert curve[-1] <= graph.num_nodes
        assert all(a <= b for a, b in zip(curve, curve[1:]))

    @given(connected_latency_graphs(max_nodes=10), seeds(100))
    @settings(max_examples=15, deadline=None)
    def test_event_stream_accounts_for_coverage(self, graph, seed):
        """Delivery coverage deltas sum to exactly the ``n - 1`` new rumors."""
        counter = CounterSink()
        with Recorder(MemorySink(), counter) as recorder:
            result = run_push_pull(
                graph, seed=seed, max_rounds=5_000, recorder=recorder
            )
        assert result.complete
        assert counter.rumors_learned == graph.num_nodes - 1
        rounds_closed = len(recorder.events_of("round"))
        assert rounds_closed == result.rounds
