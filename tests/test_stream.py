"""Tests for the streamed all-to-all runner (:mod:`repro.sim.stream`).

The streamed run replays one recorded contact schedule over rumor
blocks, so its :class:`~repro.sim.metrics.DisseminationResult` must be
*equal* — rounds, exchanges, messages, protocol tag — to the monolithic
``run_push_pull(..., mode="all_to_all", backend="vector")`` run of the
same seed, for every block size (including the degenerate single-block
case) and every memory budget.  The bit-exact replay shortcuts
(saturated-row skip, zero-row payload drop) are covered implicitly:
any divergence shows up as a different completion round.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.graphs.generators import erdos_renyi, ring_of_cliques
from repro.graphs.latency_models import uniform_latency
from repro.protocols.base import per_node_rng_factory
from repro.protocols.push_pull import PushPullProtocol, run_push_pull
from repro.sim import StreamReport, run_streamed_all_to_all
from repro.sim.stream import _RecordedSchedule
from repro.sim.vector import VectorEngine, VectorState


def small_graph(seed=7, n=40, p=0.15):
    return erdos_renyi(
        n, p, latency_model=uniform_latency(1, 4), rng=random.Random(seed)
    )


class TestStreamedEqualsMonolithic:
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_result_matches_vector_run(self, seed):
        graph = small_graph(seed=seed)
        monolithic = run_push_pull(
            graph, mode="all_to_all", seed=seed, backend="vector"
        )
        report = run_streamed_all_to_all(graph, seed=seed)
        assert report.result == monolithic

    @pytest.mark.parametrize("block_rumors", [3, 7, 39, 40, 64])
    def test_every_block_size_agrees(self, block_rumors):
        graph = small_graph()
        monolithic = run_push_pull(
            graph, mode="all_to_all", seed=5, backend="vector"
        )
        report = run_streamed_all_to_all(
            graph, seed=5, block_rumors=block_rumors
        )
        assert report.result == monolithic
        assert report.blocks == -(-graph.num_nodes // min(block_rumors, 40))

    def test_tiny_budget_forces_multi_block(self):
        # Block sizing floors at 64 rumors, so budget-driven streaming
        # needs n > 64 to actually split.
        graph = small_graph(seed=2, n=100, p=0.08)
        monolithic = run_push_pull(
            graph, mode="all_to_all", seed=2, backend="vector"
        )
        report = run_streamed_all_to_all(graph, seed=2, max_state_bytes=200)
        assert report.result == monolithic
        assert report.block_rumors == 64
        assert report.blocks == 2
        assert report.peak_state_bytes > 0

    def test_structured_graph_agrees(self):
        graph = ring_of_cliques(4, 5, inter_latency=3, rng=random.Random(1))
        monolithic = run_push_pull(
            graph, mode="all_to_all", seed=9, backend="vector"
        )
        report = run_streamed_all_to_all(graph, seed=9, block_rumors=6)
        assert report.result == monolithic


class TestStreamReport:
    def test_report_shape(self):
        graph = small_graph(seed=4)
        report = run_streamed_all_to_all(graph, seed=4, block_rumors=16)
        assert isinstance(report, StreamReport)
        assert report.result.complete
        assert report.result.protocol == "push-pull[all_to_all]"
        assert report.result.messages == 2 * report.result.exchanges
        assert report.block_rumors == 16
        assert len(report.phases) == report.blocks
        # The schedule is drawn up to the slowest block's completion
        # round, and the run's round count is that maximum.
        assert report.schedule_rounds == report.result.rounds
        assert report.result.rounds == max(p.rounds for p in report.phases)
        for phase in report.phases:
            assert phase.backend == "vector"

    def test_empty_graph_rejected(self):
        from repro.graphs.latency_graph import LatencyGraph

        with pytest.raises(SimulationError, match="non-empty"):
            run_streamed_all_to_all(LatencyGraph())

    def test_bad_block_rumors_rejected(self):
        with pytest.raises(SimulationError, match="block_rumors"):
            run_streamed_all_to_all(small_graph(), block_rumors=0)


class TestScheduleEligibility:
    """Only ungated, cap-free oblivious runs can be schedule-replayed."""

    def test_gated_program_rejected(self):
        from repro.protocols.flooding import FloodingProtocol

        graph = small_graph()
        rumor = ("rumor", graph.nodes()[0])
        engine = VectorEngine(
            graph,
            lambda node: FloodingProtocol(rumor),
            state=VectorState(graph.nodes()),
        )
        with pytest.raises(SimulationError, match="ungated"):
            _RecordedSchedule(engine)

    def test_incoming_cap_rejected(self):
        graph = small_graph()
        make_rng = per_node_rng_factory(0)
        engine = VectorEngine(
            graph,
            lambda node: PushPullProtocol(make_rng(node)),
            state=VectorState(graph.nodes()),
            max_incoming_per_round=2,
        )
        with pytest.raises(SimulationError, match="incoming cap"):
            _RecordedSchedule(engine)
