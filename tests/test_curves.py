"""Tests for informed-curve analysis helpers."""

import pytest

from repro.analysis.curves import (
    growth_phases,
    max_growth_factor,
    sparkline,
    time_to_fraction,
)
from repro.errors import ExperimentError


HISTORY = [1, 1, 2, 4, 8, 16, 30, 32]
TOTAL = 32


class TestTimeToFraction:
    def test_milestones(self):
        assert time_to_fraction(HISTORY, TOTAL, 0.5) == 5
        assert time_to_fraction(HISTORY, TOTAL, 1.0) == 7

    def test_unreached_fraction(self):
        assert time_to_fraction([1, 2], 32, 0.5) is None

    def test_zero_round_hit(self):
        assert time_to_fraction([32], 32, 1.0) == 0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            time_to_fraction([], 10, 0.5)
        with pytest.raises(ExperimentError):
            time_to_fraction([3, 2], 10, 0.5)  # decreasing
        with pytest.raises(ExperimentError):
            time_to_fraction([11], 10, 0.5)  # exceeds total
        with pytest.raises(ExperimentError):
            time_to_fraction([1], 10, 0.0)  # bad fraction


class TestGrowthPhases:
    def test_all_milestones(self):
        phases = growth_phases(HISTORY, TOTAL)
        assert phases == {"t10": 3, "t50": 5, "t90": 6, "t100": 7}

    def test_incomplete_history(self):
        phases = growth_phases([1, 4], 32)
        assert phases["t10"] == 1
        assert phases["t100"] is None


class TestGrowthFactor:
    def test_doubling(self):
        assert max_growth_factor([1, 2, 4, 8], 8) == pytest.approx(2.0)

    def test_flat_history(self):
        assert max_growth_factor([5, 5, 5], 10) == 1.0


class TestSparkline:
    def test_length_capped_to_width(self):
        line = sparkline(list(range(1, 101)), 100, width=20)
        assert len(line) == 20

    def test_short_history_unsampled(self):
        line = sparkline([1, 16, 32], 32)
        assert len(line) == 3
        assert line[0] < line[-1]  # bars grow

    def test_full_coverage_is_full_bar(self):
        assert sparkline([32], 32).endswith("█")

    def test_bad_width(self):
        with pytest.raises(ExperimentError):
            sparkline([1], 2, width=0)


class TestIntegrationWithPushPull:
    def test_history_reaches_total(self):
        from repro.graphs import generators
        from repro.protocols.push_pull import run_push_pull

        g = generators.clique(16)
        result = run_push_pull(g, source=0, seed=1, track_progress=True)
        history = result.informed_history
        assert history[-1] == 16
        phases = growth_phases(history, 16)
        assert phases["t100"] == result.rounds
        assert max_growth_factor(history, 16) > 1.2
