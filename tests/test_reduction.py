"""Tests for the gossip-to-guessing-game reduction (Lemma 3)."""

import random

from repro.graphs.gadgets import (
    guessing_gadget,
    random_target,
    singleton_target,
    theorem6_network,
)
from repro.lowerbounds.reduction import simulate_gossip_as_guessing
from repro.protocols.base import per_node_rng_factory
from repro.protocols.push_pull import PushPullProtocol


def push_pull_factory(seed):
    make_rng = per_node_rng_factory(seed)
    return lambda node: PushPullProtocol(make_rng(node))


class TestLemma3:
    def test_holds_on_singleton_gadget(self):
        for seed in range(5):
            rng = random.Random(seed)
            gadget = guessing_gadget(6, singleton_target(6, rng))
            outcome = simulate_gossip_as_guessing(gadget, push_pull_factory(seed))
            assert outcome.lemma3_holds
            assert outcome.gossip_complete

    def test_holds_on_random_gadget(self):
        for seed in range(3):
            rng = random.Random(seed)
            gadget = guessing_gadget(8, random_target(8, 0.3, rng))
            outcome = simulate_gossip_as_guessing(gadget, push_pull_factory(seed))
            assert outcome.lemma3_holds

    def test_holds_on_symmetric_gadget(self):
        rng = random.Random(1)
        gadget = guessing_gadget(6, random_target(6, 0.4, rng), symmetric=True)
        outcome = simulate_gossip_as_guessing(gadget, push_pull_factory(1))
        assert outcome.lemma3_holds

    def test_holds_on_theorem6_network(self):
        rng = random.Random(2)
        gadget = theorem6_network(24, 8, rng)
        outcome = simulate_gossip_as_guessing(gadget, push_pull_factory(2))
        assert outcome.lemma3_holds

    def test_game_solved_no_later_than_gossip(self):
        rng = random.Random(3)
        gadget = guessing_gadget(6, random_target(6, 0.5, rng))
        outcome = simulate_gossip_as_guessing(gadget, push_pull_factory(3))
        assert outcome.gossip_complete
        assert outcome.game_rounds is not None
        assert outcome.game_rounds <= outcome.gossip_rounds

    def test_empty_target_game_trivially_done(self):
        gadget = guessing_gadget(4, frozenset())
        outcome = simulate_gossip_as_guessing(gadget, push_pull_factory(4))
        # No fast cross edges: local broadcast over fast edges is vacuous
        # for right nodes; the game starts solved.
        assert outcome.lemma3_holds

    def test_budget_exhaustion_reported(self):
        rng = random.Random(5)
        gadget = guessing_gadget(10, singleton_target(10, rng))
        outcome = simulate_gossip_as_guessing(
            gadget, push_pull_factory(5), max_rounds=1
        )
        assert not outcome.gossip_complete
        assert outcome.lemma3_holds  # vacuously: gossip never completed

    def test_guess_accounting(self):
        rng = random.Random(6)
        gadget = guessing_gadget(5, singleton_target(5, rng))
        outcome = simulate_gossip_as_guessing(gadget, push_pull_factory(6))
        assert outcome.guesses_submitted > 0

    def test_rounds_grow_with_delta_theorem6(self):
        # The empirical content of Theorem 6: larger gadgets take longer.
        def mean_game_rounds(delta, seeds=6):
            total = 0
            for seed in range(seeds):
                rng = random.Random(seed)
                gadget = theorem6_network(2 * delta + 8, delta, rng)
                outcome = simulate_gossip_as_guessing(
                    gadget, push_pull_factory(seed + 100)
                )
                assert outcome.lemma3_holds
                total += (
                    outcome.game_rounds
                    if outcome.game_rounds is not None
                    else outcome.gossip_rounds
                )
            return total / seeds

        assert mean_game_rounds(24) > mean_game_rounds(4)
