"""Observability overhead smoke: the recorder must be free when disabled.

Every instrumentation site in the engine hot path is guarded by a single
``recorder is None`` check, so a recorder-disabled run is supposed to be
indistinguishable from the pre-observability engine.  This suite pins
that down two ways on the ``pushpull_broadcast_er_n400`` microbenchmark
workload (same graph, seed, and shape as ``BENCH_engine.json``):

* the recorder-disabled wall clock must stay within the 2% acceptance
  envelope of the committed ``BENCH_engine_baseline.json`` numbers.  The
  baseline was captured on the pre-optimization engine (~30x slower than
  the current one), so in practice this is a loud catastrophic-regression
  tripwire — e.g. instrumentation accidentally moved inside the per-round
  loop — rather than a tight bound;
* a paired in-process A/B (recorder disabled vs. a ``CounterSink``
  recorder attached) reports the *enabled* overhead ratio, so the cost of
  turning telemetry on is visible in every benchmark log.

Runs standalone, no pytest-benchmark needed:
``PYTHONPATH=src python -m pytest benchmarks/test_bench_obs_overhead.py``.
"""

import json
import random
import time

from repro.benchmarking import BASELINE_PATH
from repro.graphs import generators
from repro.graphs.latency_models import uniform_latency
from repro.obs import CounterSink, Recorder
from repro.protocols.push_pull import run_push_pull

WORKLOAD = "pushpull_broadcast_er_n400"
N, P = 400, 0.03
REPEATS = 3
OVERHEAD_ENVELOPE = 1.02  # acceptance criterion: within 2% of the baseline


def _workload_graph():
    # Must match _pushpull_workload in repro.benchmarking exactly, or the
    # baseline comparison is meaningless.
    return generators.erdos_renyi(
        N, P, latency_model=uniform_latency(1, 8), rng=random.Random(0)
    )


def _best_of(graph, repeats=REPEATS, make_recorder=lambda: None):
    """Best wall-clock of ``repeats`` runs (one untimed warmup first)."""
    run_push_pull(graph, seed=0, recorder=make_recorder())
    best = None
    for _ in range(repeats):
        recorder = make_recorder()
        start = time.perf_counter()
        run_push_pull(graph, seed=0, recorder=recorder)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_recorder_disabled_within_baseline_envelope(capsys):
    assert BASELINE_PATH.exists(), "committed BENCH_engine_baseline.json missing"
    baseline = json.loads(BASELINE_PATH.read_text())["workloads"][WORKLOAD]
    graph = _workload_graph()
    disabled = _best_of(graph)
    budget = OVERHEAD_ENVELOPE * baseline["seconds"]
    with capsys.disabled():
        print()
        print(
            f"{WORKLOAD}: recorder-disabled {disabled:.4f}s, baseline "
            f"{baseline['seconds']:.4f}s, budget {budget:.4f}s "
            f"({baseline['seconds'] / disabled:.1f}x headroom)"
        )
    assert disabled <= budget, (
        f"recorder-disabled run took {disabled:.4f}s — over the "
        f"{OVERHEAD_ENVELOPE}x envelope of the committed baseline "
        f"({baseline['seconds']:.4f}s); did instrumentation leak into the "
        "per-round hot path?"
    )


def test_enabled_overhead_is_bounded(capsys):
    graph = _workload_graph()
    disabled = _best_of(graph)
    recorders = []

    def make_recorder():
        recorder = Recorder(CounterSink())
        recorders.append(recorder)
        return recorder

    enabled = _best_of(graph, make_recorder=make_recorder)
    ratio = enabled / disabled
    with capsys.disabled():
        print()
        print(
            f"{WORKLOAD}: disabled {disabled:.4f}s, CounterSink recorder "
            f"{enabled:.4f}s ({ratio:.2f}x)"
        )
    assert recorders[-1].events_recorded > 0
    # Event construction + counter updates cost real time; this is a
    # sanity rail against pathological blowups, not a tight bound.
    assert ratio < 10.0, f"recorder-enabled run is {ratio:.1f}x slower"
