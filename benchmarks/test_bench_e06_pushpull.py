"""E6 — Theorem 12: push--pull completes within O((ℓ*/φ*)·log n)."""


def test_bench_e06_pushpull_upper_bound(run_experiment):
    table = run_experiment("E6")
    # The upper bound is never violated by more than a constant: measured
    # time stays below the predicted (ℓ*/φ*)·log n budget (with generous
    # slack for the sweep approximation of φ*).
    assert all(r <= 4.0 for r in table.column("measured/predicted"))
    # And the predictor is informative: strong positive correlation.
    assert "corr" in table.conclusion
