"""E4 — Theorem 7: the G(Random_φ) network's structure and push--pull cost."""


def test_bench_e04_theorem7(run_experiment):
    table = run_experiment("E4")
    # Measured phi_ell tracks the target phi within constants whenever the
    # gadget is dense enough to concentrate (phi*n >= a few).
    for row in table.rows:
        if row["phi"] * row["n"] / 2 >= 6:
            assert 0.2 <= row["measured_phi_ell"] / row["phi"] <= 2.0
    # Push--pull time tracks log(n)/phi + ell within a constant band.
    ratios = table.column("ratio")
    assert all(0.2 <= r <= 8.0 for r in ratios)
