"""E16 — conclusion: O(1) accepted connections per round (bounded in-degree)."""


def test_bench_e16_bounded_indegree(run_experiment):
    table = run_experiment("E16")
    rows = {(r["cap"], r["graph"].split()[0]): r for r in table.rows}
    n = int(table.rows[0]["graph"].split("=")[1])
    star_unbounded = rows[("unbounded", "star")]["rounds"]
    star_capped = rows[(1, "star")]["rounds"]
    expander_unbounded = rows[("unbounded", "expander")]["rounds"]
    expander_capped = rows[(1, "expander")]["rounds"]
    # The star collapses to ~n rounds under cap=1...
    assert star_capped >= 0.5 * n
    assert star_capped > 3 * star_unbounded
    # ...while the expander's slowdown is comparatively mild.
    assert expander_capped < 3 * expander_unbounded
