"""E5 — Theorem 8: the min(Δ + D, ℓ/φ) trade-off on the ring of gadgets."""


def test_bench_e05_theorem8(run_experiment):
    table = run_experiment("E5")
    rounds = table.column("rounds")
    envelopes = table.column("min_envelope")
    # Measured time grows with ell in the pay regime then flattens: the
    # last two measurements (search regime) differ by < 2x while the first
    # two (pay regime) grow.
    assert rounds[1] > rounds[0]
    assert rounds[-1] < 2.5 * rounds[-3]
    # The envelope tracks the measurement within a constant band.
    ratios = [r / e for r, e in zip(rounds, envelopes)]
    assert max(ratios) / min(ratios) < 5.0
