"""Engine microbenchmarks: hot-path wall-clock, no pytest-benchmark needed.

Unlike the experiment benchmarks in this directory, this suite times the
raw simulation core via :mod:`repro.benchmarking` (push--pull
dissemination, NetworkState churn, done-node scheduling) and writes
``benchmarks/results/BENCH_engine.json``.  When the committed baseline
(``BENCH_engine_baseline.json``, captured on the pre-optimization engine)
is present, the report embeds per-workload speedup factors — regressions
show up as factors below 1.0.

Runs standalone — ``pytest benchmarks/test_bench_engine_micro.py`` — so CI
can smoke it without the pytest-benchmark plugin.  Set
``REPRO_PROFILE=full`` for the paper-scale n=2000 workloads.
"""

from repro.benchmarking import BENCH_PATH, run_microbenchmarks, write_report


def test_engine_microbenchmarks(capsys, profile):
    report = write_report(run_microbenchmarks(profile))
    with capsys.disabled():
        print()
        for name, entry in sorted(report["workloads"].items()):
            line = f"{name}: {entry['seconds']:.3f}s"
            speedup = report.get("speedup", {}).get(name)
            if speedup:
                line += f"  ({speedup:.1f}x vs pre-optimization baseline)"
            print(line)
        print(f"report written to {BENCH_PATH}")
    assert BENCH_PATH.exists()
    assert report["workloads"], "no workloads were timed"
    assert all(entry["seconds"] > 0 for entry in report["workloads"].values())
