"""E11 — Theorem 20: the unified min() bound flips between regimes."""


def test_bench_e11_unified(run_experiment):
    table = run_experiment("E11")
    assert all(table.column("analytic_matches"))
    for row in table.rows:
        # The composition pays exactly 2x its faster component.
        winner_rounds = min(row["measured_pushpull"], row["measured_spanner"])
        assert row["unified_rounds"] == 2 * winner_rounds
