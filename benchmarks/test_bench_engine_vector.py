"""Engine-backend microbenchmarks: scalar vs vector on shared graphs.

Times the ``engine_vector`` suite from :mod:`repro.benchmarking` — the
scalar and vector backends running the *same* seeded push--pull
workloads on the *same* cached graph — and writes
``benchmarks/results/BENCH_engine_vector.json``.  When the committed
baseline (``BENCH_engine_vector_baseline.json``) is present the report
embeds per-workload speedup factors for the regression gate
(``repro regress --suite engine_vector``).

Runs standalone — ``pytest benchmarks/test_bench_engine_vector.py`` — so
CI can smoke the quick profile without the pytest-benchmark plugin.  Set
``REPRO_PROFILE=full`` for the acceptance workloads (the n=10^4
scalar/vector comparison points and the n=10^5 / n=2.5·10^5 vector-only
scale runs).
"""

from repro.benchmarking import (
    BENCH_ENGINE_VECTOR_PATH,
    ENGINE_VECTOR_BASELINE_PATH,
    run_microbenchmarks,
    write_report,
)


def test_engine_vector_microbenchmarks(capsys, profile):
    report = write_report(
        run_microbenchmarks(profile, suite="engine_vector"),
        out_path=BENCH_ENGINE_VECTOR_PATH,
        baseline_path=ENGINE_VECTOR_BASELINE_PATH,
    )
    with capsys.disabled():
        print()
        for name, entry in sorted(report["workloads"].items()):
            line = f"{name}: {entry['seconds']:.3f}s"
            speedup = report.get("speedup", {}).get(name)
            if speedup:
                line += f"  ({speedup:.1f}x vs committed baseline)"
            print(line)
        print(f"report written to {BENCH_ENGINE_VECTOR_PATH}")
    assert BENCH_ENGINE_VECTOR_PATH.exists()
    assert report["workloads"], "no workloads were timed"
    assert all(entry["seconds"] > 0 for entry in report["workloads"].values())


def test_quick_profile_has_shared_comparison_point(profile):
    # Whatever the profile, the suite must pit both backends against each
    # other on at least one identical (graph, seed, mode) workload —
    # that pairing is what makes the committed numbers a *comparison*.
    from repro.benchmarking import engine_vector_microbenchmarks

    names = [w.name for w in engine_vector_microbenchmarks(profile)]
    scalar_points = {
        n.replace("_scalar_", "_") for n in names if "_scalar_" in n
    }
    vector_points = {
        n.replace("_vector_", "_") for n in names if "_vector_" in n
    }
    assert scalar_points & vector_points, names
