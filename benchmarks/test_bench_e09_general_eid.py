"""E9 — Theorem 19 / Lemma 18: General EID with unknown diameter."""


def test_bench_e09_general_eid(run_experiment):
    table = run_experiment("E9")
    for row in table.rows:
        # Lemma 18: nobody terminates before dissemination completed.
        assert row["complete_at"] is not None
        assert row["detect_lag"] >= 0
        # Guess-and-double overhead stays a small constant.
        assert row["overhead"] <= 8.0
