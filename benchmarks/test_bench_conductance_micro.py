"""Conductance microbenchmarks: analysis-pipeline wall-clock, no plugins.

Like ``test_bench_engine_micro.py`` but for the ``φ_ℓ`` sweep-cut
pipeline (`repro.conductance`): full threshold profiles, single-threshold
sweeps, and the ``φ*``/``ℓ*`` computation.  Writes
``benchmarks/results/BENCH_conductance.json``; when the committed
baseline (``BENCH_conductance_baseline.json``, captured on the
pre-vectorization sweep) is present, the report embeds per-workload
speedup factors — regressions show up as factors below 1.0.

Runs standalone — ``pytest benchmarks/test_bench_conductance_micro.py``
— so CI can smoke it.  Set ``REPRO_PROFILE=full`` for the paper-scale
n=2000 acceptance workload.
"""

from repro.benchmarking import (
    BENCH_CONDUCTANCE_PATH,
    run_microbenchmarks,
    write_report,
)
from repro.benchmarking import CONDUCTANCE_BASELINE_PATH


def test_conductance_microbenchmarks(capsys, profile):
    report = write_report(
        run_microbenchmarks(profile, suite="conductance"),
        out_path=BENCH_CONDUCTANCE_PATH,
        baseline_path=CONDUCTANCE_BASELINE_PATH,
    )
    with capsys.disabled():
        print()
        for name, entry in sorted(report["workloads"].items()):
            line = f"{name}: {entry['seconds']:.3f}s"
            speedup = report.get("speedup", {}).get(name)
            if speedup:
                line += f"  ({speedup:.1f}x vs pre-vectorization baseline)"
            print(line)
        print(f"report written to {BENCH_CONDUCTANCE_PATH}")
    assert BENCH_CONDUCTANCE_PATH.exists()
    assert report["workloads"], "no workloads were timed"
    assert all(entry["seconds"] > 0 for entry in report["workloads"].values())
