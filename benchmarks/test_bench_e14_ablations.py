"""E14 — ablations: pull, snapshot semantics, spanner k, RR budget."""


def test_bench_e14_ablations(run_experiment):
    table = run_experiment("E14")
    rows = {row["ablation"]: row for row in table.rows}
    push_only = next(v for k, v in rows.items() if "push-only" in k)
    push_pull = next(v for k, v in rows.items() if "push-pull flood" in k)
    # Footnote 2's separation: push-only pays ~n, push--pull O(1).
    assert push_only["value"] >= 10 * push_pull["value"]
    # Spanner stretch never exceeds its 2k-1 budget.
    for key, row in rows.items():
        if key.startswith("spanner k="):
            assert row["value"] <= row["reference"]
    # RR completes inside the Lemma 15 budget.
    rr = rows["RR broadcast completion"]
    assert rr["value"] <= rr["reference"]
