"""E13 — Appendix C / Figures 4-5: ℓ-DTG iteration and round scaling."""


def test_bench_e13_dtg(run_experiment):
    table = run_experiment("E13")
    assert all(table.column("complete"))
    # One DTG step is charged exactly ell rounds: scaling ratio near 3.
    assert all(2.0 <= v <= 3.5 for v in table.column("ℓ-scaling"))
    # Iterations grow (weakly) with n and stay O(log n).
    iterations = table.column("iterations")
    assert iterations[-1] >= iterations[0]
    assert all(v <= 3.0 for v in table.column("iters/log n"))
