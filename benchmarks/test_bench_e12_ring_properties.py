"""E12 — Lemmas 9-11 / Observation 23: Theorem 8 ring structural audit."""


def test_bench_e12_ring_properties(run_experiment):
    table = run_experiment("E12")
    assert all(table.column("regular(3s-1)"))
    assert all(table.column("ell*_is_ell"))
    # phi_ell(C) within constants of alpha (rounding perturbs the exact
    # equality of the paper's continuous parametrization).
    assert all(0.3 <= v <= 3.0 for v in table.column("phi_cut/alpha"))
    # Weighted diameter ~ k/2 layer hops.
    assert all(1.0 <= v <= 4.0 for v in table.column("D/hops"))
