"""E3 — Theorem 6: Ω(Δ) rounds despite constant diameter and hop conductance."""


def test_bench_e03_theorem6(run_experiment):
    table = run_experiment("E3")
    deltas = table.column("delta")
    rounds = table.column("rounds_to_hit")
    # Rounds grow with Δ...
    assert rounds[-1] > 2 * rounds[0]
    # ...and never exceed the trivial O(Δ) search cost by much.
    assert all(r <= 3 * d + 10 for d, r in zip(deltas, rounds))
