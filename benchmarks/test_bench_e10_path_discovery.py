"""E10 — Appendix E: the T(k) schedule and Path Discovery."""


def test_bench_e10_path_discovery(run_experiment):
    table = run_experiment("E10")
    assert all(table.column("T(k)_covers"))
    # The ruler schedule beats the naive O(D² log² n) baseline, and the
    # advantage grows with D.
    speedups = table.column("speedup_vs_naive")
    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] >= speedups[0]
