"""E2 — Lemma 5: Random_p targets — adaptive Θ(1/p) vs oblivious Θ(log(m)/p)."""


def test_bench_e02_lemma5(run_experiment):
    table = run_experiment("E2")
    # The oblivious (push--pull-like) strategy pays strictly more than the
    # adaptive one on every configuration — the log m gap.
    ratios = table.column("oblivious/adaptive")
    assert all(r > 1.0 for r in ratios)
    # Adaptive cost tracks 1/p: rounds * p stays within a small band.
    normalized = table.column("adaptive*p")
    assert max(normalized) / min(normalized) < 6.0
