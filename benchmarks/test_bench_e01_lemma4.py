"""E1 — Lemma 4: the singleton guessing game needs Ω(m) rounds."""


def test_bench_e01_lemma4(run_experiment):
    table = run_experiment("E1")
    # The Ω(m) shape: rounds scale like m (log-log slope near 1) and the
    # per-m cost never collapses toward zero.
    sizes = table.column("m")
    adaptive = table.column("adaptive_rounds")
    assert adaptive[-1] > adaptive[0]
    assert all(r / m > 0.05 for m, r in zip(sizes, adaptive))
