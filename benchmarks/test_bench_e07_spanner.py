"""E7 — Lemma 13 / Theorem 14: Baswana--Sen spanner size, degree, stretch."""


def test_bench_e07_spanner(run_experiment):
    table = run_experiment("E7")
    assert all(table.column("stretch_ok"))
    # O(n log n) edges: the normalized edge count stays bounded.
    assert all(v < 4.0 for v in table.column("edges/(n·log n)"))
    # Out-degree stays logarithmic-ish: bounded by 4 log2 n.
    import math

    for row in table.rows:
        assert row["max_outdeg"] <= 4 * math.log2(row["n"])
