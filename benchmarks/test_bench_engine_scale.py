"""Mega-scale engine benchmarks: vector-backend broadcasts with memory caps.

Times the ``engine_scale`` suite from :mod:`repro.benchmarking` — seeded
push--pull broadcasts on the vector backend at ``n = 10^5`` (quick) and
``n = 10^6`` (full) — and writes
``benchmarks/results/BENCH_engine_scale.json``.  Every workload entry
records ``peak_state_bytes`` and the chosen state layout next to the
wall time, so the committed report doubles as the memory-acceptance
artifact: at ``n = 10^6`` the broadcast layout holds about 1 MB of rumor
state where a dense bitset matrix would need ~125 GB.

The smoke leg re-runs the quick workload in a subprocess whose
``RLIMIT_DATA`` is clamped to a hard memory ceiling, so CI catches any
change that silently reintroduces O(n^2)-ish allocations — the run
*crashes* instead of quietly paging.

Runs standalone — ``pytest benchmarks/test_bench_engine_scale.py`` — so
CI can smoke it without the pytest-benchmark plugin.  Set
``REPRO_PROFILE=full`` for the ``n = 10^6`` acceptance workload, or use
``make scale-smoke``.
"""

import json
import os
import pathlib
import subprocess
import sys

from repro.benchmarking import (
    BENCH_ENGINE_SCALE_PATH,
    ENGINE_SCALE_BASELINE_PATH,
    run_microbenchmarks,
    write_report,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Hard data-segment ceiling for the smoke leg.  The quick n=10^5 run
#: peaks around 0.73 GB resident (graph + CSR tables dominate; the rumor
#: state itself is 100 kB), so 1.5 GiB passes with margin while a dense
#: all-to-all state matrix at that n (1.25 GB before the graph) cannot.
MEMORY_CEILING_BYTES = 3 * (1 << 29)

# Runs inside `python -c` in a fresh interpreter: clamp RLIMIT_DATA
# before importing numpy or touching any graph, so *every* allocation of
# the workload is under the ceiling, then emit the workload meta as the
# last stdout line for the parent to parse.
_CEILING_SCRIPT = """
import json, resource, sys
ceiling = int(sys.argv[1])
soft, hard = resource.getrlimit(resource.RLIMIT_DATA)
resource.setrlimit(resource.RLIMIT_DATA, (ceiling, hard))
try:
    from repro.benchmarking import engine_scale_microbenchmarks
    workload = engine_scale_microbenchmarks("quick")[0]
    meta = workload.run()
finally:
    resource.setrlimit(resource.RLIMIT_DATA, (soft, hard))
print(json.dumps(meta))
"""


def test_engine_scale_microbenchmarks(capsys, profile):
    report = write_report(
        run_microbenchmarks(profile, suite="engine_scale"),
        out_path=BENCH_ENGINE_SCALE_PATH,
        baseline_path=ENGINE_SCALE_BASELINE_PATH,
    )
    with capsys.disabled():
        print()
        for name, entry in sorted(report["workloads"].items()):
            line = (
                f"{name}: {entry['seconds']:.3f}s  layout={entry['layout']}"
                f"  peak_state_bytes={entry['peak_state_bytes']}"
            )
            speedup = report.get("speedup", {}).get(name)
            if speedup:
                line += f"  ({speedup:.1f}x vs committed baseline)"
            print(line)
        print(f"report written to {BENCH_ENGINE_SCALE_PATH}")
    assert BENCH_ENGINE_SCALE_PATH.exists()
    assert report["workloads"], "no workloads were timed"
    for entry in report["workloads"].values():
        assert entry["seconds"] > 0
        # The acceptance bound: rumor state stays far under 1 GB at any
        # n in the suite (broadcast layout is n bytes per rumor).
        assert entry["peak_state_bytes"] < 1 << 30
        assert "broadcast" in entry["layout"]


def test_scale_smoke_under_memory_ceiling(profile):
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    proc = subprocess.run(
        [sys.executable, "-c", _CEILING_SCRIPT, str(MEMORY_CEILING_BYTES)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"n=10^5 broadcast crashed under the "
        f"{MEMORY_CEILING_BYTES >> 20} MiB RLIMIT_DATA ceiling:\n"
        f"{proc.stderr[-2000:]}"
    )
    meta = json.loads(proc.stdout.strip().splitlines()[-1])
    assert meta["n"] == 100_000
    assert meta["layout"] == "broadcast"
    assert 0 < meta["peak_state_bytes"] < 1 << 20
