"""Mega-scale engine benchmarks: vector-backend broadcasts with memory caps.

Times the ``engine_scale`` suite from :mod:`repro.benchmarking` — seeded
push--pull broadcasts *and streamed all-to-all runs* on the vector
backend at ``n = 10^5`` (quick) and ``n = 10^6`` (full) — and writes
``benchmarks/results/BENCH_engine_scale.json``.  Every workload entry
records ``peak_state_bytes`` and the chosen state layout next to the
wall time, so the committed report doubles as the memory-acceptance
artifact: at ``n = 10^6`` the broadcast layout holds about 1 MB of rumor
state where a dense bitset matrix would need ~125 GB, and the streamed
all-to-all replays rumor blocks through a chunked layout whose peak
residency stays inside its declared ``max_state_bytes`` budget.

The smoke legs re-run each quick workload in a subprocess whose
``RLIMIT_DATA`` is clamped to a hard memory ceiling, so CI catches any
change that silently reintroduces O(n^2)-ish allocations — the run
*crashes* instead of quietly paging.

Runs standalone — ``pytest benchmarks/test_bench_engine_scale.py`` — so
CI can smoke it without the pytest-benchmark plugin.  Set
``REPRO_PROFILE=full`` for the ``n = 10^6`` acceptance workload, or use
``make scale-smoke``.
"""

import json
import os
import pathlib
import subprocess
import sys

from repro.benchmarking import (
    BENCH_ENGINE_SCALE_PATH,
    ENGINE_SCALE_BASELINE_PATH,
    run_microbenchmarks,
    write_report,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Hard data-segment ceiling for the smoke legs.  Each quick workload
#: runs in its own fresh interpreter under this cap.  The n=10^5
#: broadcast peaks around 0.73 GB resident (graph + CSR tables dominate;
#: the rumor state itself is 100 kB); the n=10^5 streamed all-to-all
#: holds its graph plus one rumor-block slice and the in-flight payload
#: rows under a 256 MiB state budget (~1.2 GB resident).  1.5 GiB passes
#: both with margin, while the *dense* all-to-all state matrix at that n
#: (1.25 GB before the graph or a single payload row) cannot fit.
MEMORY_CEILING_BYTES = 3 * (1 << 29)

# Runs inside `python -c` in a fresh interpreter: clamp RLIMIT_DATA
# before importing numpy or touching any graph, so *every* allocation of
# the workload is under the ceiling, then emit the workload meta as the
# last stdout line for the parent to parse.  argv: ceiling, quick-profile
# workload index.
_CEILING_SCRIPT = """
import json, resource, sys
ceiling = int(sys.argv[1])
soft, hard = resource.getrlimit(resource.RLIMIT_DATA)
resource.setrlimit(resource.RLIMIT_DATA, (ceiling, hard))
try:
    from repro.benchmarking import engine_scale_microbenchmarks
    workload = engine_scale_microbenchmarks("quick")[int(sys.argv[2])]
    meta = workload.run()
finally:
    resource.setrlimit(resource.RLIMIT_DATA, (soft, hard))
print(json.dumps(meta))
"""


def test_engine_scale_microbenchmarks(capsys, profile):
    report = write_report(
        run_microbenchmarks(profile, suite="engine_scale"),
        out_path=BENCH_ENGINE_SCALE_PATH,
        baseline_path=ENGINE_SCALE_BASELINE_PATH,
    )
    with capsys.disabled():
        print()
        for name, entry in sorted(report["workloads"].items()):
            line = (
                f"{name}: {entry['seconds']:.3f}s  layout={entry['layout']}"
                f"  peak_state_bytes={entry['peak_state_bytes']}"
            )
            speedup = report.get("speedup", {}).get(name)
            if speedup:
                line += f"  ({speedup:.1f}x vs committed baseline)"
            print(line)
        print(f"report written to {BENCH_ENGINE_SCALE_PATH}")
    assert BENCH_ENGINE_SCALE_PATH.exists()
    assert report["workloads"], "no workloads were timed"
    for name, entry in report["workloads"].items():
        assert entry["seconds"] > 0
        if "streamed" in name:
            # The streaming acceptance bound: peak rumor-state residency
            # is one block slice inside the declared budget — far under
            # the dense n x n matrix (~125 GB at n = 10^6).
            assert entry["layout"] == "chunked"
            assert 0 < entry["peak_state_bytes"] <= entry["max_state_bytes"]
            assert entry["peak_state_bytes"] < entry["n"] ** 2 // 8
            assert entry["blocks"] >= 1
        else:
            # The broadcast acceptance bound: rumor state stays far under
            # 1 GB at any n (broadcast layout is n bytes per rumor).
            assert entry["peak_state_bytes"] < 1 << 30
            assert "broadcast" in entry["layout"]


def _run_quick_workload_under_ceiling(index: int) -> dict:
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _CEILING_SCRIPT,
            str(MEMORY_CEILING_BYTES),
            str(index),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"quick workload {index} crashed under the "
        f"{MEMORY_CEILING_BYTES >> 20} MiB RLIMIT_DATA ceiling:\n"
        f"{proc.stderr[-2000:]}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_scale_smoke_under_memory_ceiling(profile):
    meta = _run_quick_workload_under_ceiling(0)
    assert meta["n"] == 100_000
    assert meta["layout"] == "broadcast"
    assert 0 < meta["peak_state_bytes"] < 1 << 20


def test_streamed_all_to_all_smoke_under_memory_ceiling(profile):
    meta = _run_quick_workload_under_ceiling(1)
    assert meta["n"] == 100_000
    assert meta["layout"] == "chunked"
    # One rumor-block slice resident, inside the workload's budget —
    # where the dense n x n bitset alone would need 1.25 GB.
    assert 0 < meta["peak_state_bytes"] <= meta["max_state_bytes"]
    assert meta["blocks"] > 1
