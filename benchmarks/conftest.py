"""Shared benchmark plumbing.

Each benchmark runs one experiment from the registry (one iteration — the
experiments are internally repeated over seed ladders), prints the
reproduced table through the capture-disabled channel so it lands in the
benchmark log, and saves it under ``benchmarks/results/``.  Every run
also records the process resident-set high-water mark (``peak_rss_kb``)
next to the wall time, so memory regressions are visible in the same
artifacts as timing regressions.

Set ``REPRO_PROFILE=full`` for the larger parameter ladders.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def profile() -> str:
    return os.environ.get("REPRO_PROFILE", "quick")


@pytest.fixture
def run_experiment(benchmark, capsys, profile):
    """Run one registered experiment under pytest-benchmark and report it."""

    def run(experiment_id: str):
        from repro.benchmarking import peak_rss_kb
        from repro.experiments import get_experiment

        experiment = get_experiment(experiment_id)
        table = benchmark.pedantic(
            experiment, args=(profile,), iterations=1, rounds=1
        )
        text = table.to_text()
        rss = peak_rss_kb()
        if rss is not None:
            benchmark.extra_info["peak_rss_kb"] = rss
            text += f"\npeak_rss_kb: {rss}"
        with capsys.disabled():
            print()
            print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        return table

    return run
