"""E15 — conclusion: fault tolerance of push--pull vs the spanner route."""


def test_bench_e15_failures(run_experiment):
    table = run_experiment("E15")
    # Push--pull keeps full reachable-survivor coverage in every regime.
    assert all(v == 1.0 for v in table.column("pushpull_coverage"))
    # The spanner route has single points of failure: the adversarial
    # spanner-cut crash drops its coverage below 1.
    cut_rows = [r for r in table.rows if "spanner-cut" in r["failure"]]
    assert cut_rows
    assert all(r["spanner_coverage"] < 1.0 for r in cut_rows)
    # Loss slows push--pull down but does not break it.
    loss_rows = [r for r in table.rows if r["failure"].startswith("loss")]
    assert loss_rows[-1]["pushpull_rounds"] >= loss_rows[0]["pushpull_rounds"]
