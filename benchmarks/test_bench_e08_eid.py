"""E8 — Lemma 17: EID(D) solves all-to-all dissemination in O(D·log³ n)."""


def test_bench_e08_eid(run_experiment):
    table = run_experiment("E8")
    assert all(table.column("all_to_all_ok"))
    # Completion stays within the D log^3 n budget (constant slack).
    assert all(r <= 3.0 for r in table.column("rounds/budget"))
    # And the budget is not absurdly loose: at least 5% used.
    assert all(r >= 0.05 for r in table.column("rounds/budget"))
