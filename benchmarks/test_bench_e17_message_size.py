"""E17 — conclusion: message sizes (push--pull small, DTG ships rumor sets)."""


def test_bench_e17_message_size(run_experiment):
    table = run_experiment("E17")
    # Push--pull one-to-all payloads are O(1) rumors at every n.
    assert all(v <= 2 for v in table.column("pushpull_max_payload"))
    # DTG payloads grow with n (whole rumor sets).
    dtg_max = table.column("dtg_max_payload")
    ns = table.column("n")
    assert all(m >= 0.5 * n for m, n in zip(dtg_max, ns))
    assert dtg_max[-1] > dtg_max[0]
