#!/usr/bin/env python
"""Quickstart: weighted conductance and latency-aware gossip in 40 lines.

Builds a ring of cliques (fast LANs joined by slow WAN links), computes the
paper's connectivity measure — the weighted conductance ``φ*`` and critical
latency ``ℓ*`` — and runs three dissemination protocols on it:

* classical push--pull (no knowledge needed, Theorem 12);
* ℓ-DTG local broadcast (known latencies, Appendix C);
* General EID all-to-all dissemination with unknown diameter (Theorem 19).

Run with: ``python examples/quickstart.py``
"""

import random

from repro import (
    compute_bounds,
    generators,
    run_general_eid,
    run_ldtg,
    run_push_pull,
)


def main() -> None:
    # Six 8-node cliques in a ring; adjacent cliques joined by latency-12
    # links. Think: six datacenters, each a fast LAN, joined by WAN links.
    graph = generators.ring_of_cliques(
        num_cliques=6, clique_size=8, inter_latency=12, rng=random.Random(42)
    )
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} edges")

    bounds = compute_bounds(graph, conductance_method="sweep")
    wc = bounds.conductance
    print(f"weighted diameter D = {bounds.diameter}, max degree Δ = {bounds.max_degree}")
    print(
        f"weighted conductance φ* = {wc.phi_star:.4f} "
        f"at critical latency ℓ* = {wc.critical_latency}"
    )
    print(f"connectivity term ℓ*/φ* = {wc.dissemination_bound:.0f}")
    print(f"push-pull budget (ℓ*/φ*)·log n = {bounds.push_pull_bound:.0f}")
    print()

    # One-to-all broadcast with push--pull: node 0 starts with a rumor.
    result = run_push_pull(graph, source=0, seed=7)
    print(result)

    # Local broadcast with 12-DTG: every node reaches all its neighbors.
    print(run_ldtg(graph, max_latency=12))

    # All-to-all with General EID (the algorithm does not know D).
    report = run_general_eid(graph, seed=7)
    print(
        f"General EID: dissemination complete at round "
        f"{report.first_complete_round}, detected and terminated at round "
        f"{report.rounds} (final diameter estimate {report.final_estimate})"
    )


if __name__ == "__main__":
    main()
