#!/usr/bin/env python
"""The guessing-game lower bound, played live (Section 3 / Lemma 3).

Three acts:

1. play ``Guessing(2m, |T| = 1)`` with different Alice strategies and watch
   the Ω(m) cost of Lemma 4 appear;
2. play ``Guessing(2m, Random_p)`` and watch the adaptive-vs-oblivious gap
   of Lemma 5 (the log m factor push--pull pays);
3. run the actual Lemma 3 reduction: push--pull gossip on the Theorem 6
   gadget network, with every cross-edge activation fed to the oracle as a
   guess — the hidden fast edge is only "found" when the game says so.

Run with: ``python examples/lower_bound_game.py``
"""

import random
import statistics

from repro.graphs.gadgets import theorem6_network
from repro.lowerbounds.game import GuessingGame
from repro.lowerbounds.predicates import random_predicate, singleton_predicate
from repro.lowerbounds.reduction import simulate_gossip_as_guessing
from repro.lowerbounds.strategies import (
    fresh_pair_strategy,
    play_game,
    random_guessing_strategy,
    systematic_sweep_strategy,
)
from repro.protocols.base import per_node_rng_factory
from repro.protocols.push_pull import PushPullProtocol


def mean_rounds(m, predicate, strategy_factory, seeds=10):
    rounds = []
    for seed in range(seeds):
        rng = random.Random(seed)
        game = GuessingGame(m, predicate(m, rng))
        rounds.append(play_game(game, strategy_factory, rng))
    return statistics.fmean(rounds)


def main() -> None:
    print("Act 1 — Lemma 4: singleton target needs Ω(m) rounds")
    singleton = singleton_predicate()
    print(f"{'m':>5} {'adaptive':>9} {'sweep':>7}")
    for m in (8, 16, 32, 64):
        adaptive = mean_rounds(m, singleton, fresh_pair_strategy)
        sweep = mean_rounds(m, singleton, systematic_sweep_strategy)
        print(f"{m:>5} {adaptive:>9.1f} {sweep:>7.1f}")
    print()

    print("Act 2 — Lemma 5: Random_p, adaptive 1/p vs oblivious log(m)/p")
    print(f"{'m':>5} {'p':>5} {'adaptive':>9} {'oblivious':>10} {'gap':>5}")
    for m in (16, 32, 64):
        p = 0.2
        adaptive = mean_rounds(m, random_predicate(p), fresh_pair_strategy)
        oblivious = mean_rounds(m, random_predicate(p), random_guessing_strategy)
        print(
            f"{m:>5} {p:>5} {adaptive:>9.1f} {oblivious:>10.1f} "
            f"{oblivious / adaptive:>5.1f}"
        )
    print(
        "(the oblivious strategy consistently pays a multiplicative gap —\n"
        " Lemma 5's log m factor; at these small m it reads as a ~3-4x "
        "constant)"
    )
    print()

    print("Act 3 — Lemma 3: push--pull on the Theorem 6 gadget IS the game")
    delta = 16
    rng = random.Random(0)
    gadget = theorem6_network(2 * delta + 12, delta, rng)
    make_rng = per_node_rng_factory(99)
    outcome = simulate_gossip_as_guessing(
        gadget, lambda node: PushPullProtocol(make_rng(node))
    )
    print(
        f"gadget with Δ = {delta}: local broadcast finished at round "
        f"{outcome.gossip_rounds};\nthe hidden fast edge was hit at round "
        f"{outcome.game_rounds} after {outcome.guesses_submitted} guesses"
    )
    print(f"Lemma 3 (game solved no later than gossip): {outcome.lemma3_holds}")


if __name__ == "__main__":
    main()
