#!/usr/bin/env python
"""Print text reproductions of all five figures in the paper.

* Figure 1 — the guessing-game gadgets ``G(P)`` and ``Gsym(P)``;
* Figure 2 — the Theorem 8 ring of gadgets;
* Figure 3 — the RR-broadcast delay decomposition of Lemma 15;
* Figures 4-5 — the binomial i-trees of the DTG analysis, with the
  connection-round edge labels.

Run with: ``python examples/paper_figures.py``
"""

import random

from repro.experiments.figures import (
    ITree,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
)
from repro.graphs.gadgets import (
    guessing_gadget,
    random_target,
    theorem8_ring,
)


def main() -> None:
    rng = random.Random(7)

    print(render_figure1(guessing_gadget(5, random_target(5, 0.15, rng))))
    print()
    print(
        render_figure1(
            guessing_gadget(5, random_target(5, 0.15, rng), symmetric=True)
        )
    )
    print()

    ring = theorem8_ring(4, 6, slow_latency=12, rng=rng)
    print(render_figure2(ring))
    print()

    print(render_figure3(hop_latencies=[3, 1, 4, 2], max_out_degree=5))
    print()

    print(render_figure4(3))
    print()
    print("Figure 5 — a 5-tree with connection-round edge labels")
    tree = ITree.build(5)
    print(f"({tree.size} nodes, depth {tree.depth})")
    print(tree.render())


if __name__ == "__main__":
    main()
