#!/usr/bin/env python
"""Sensor-network aggregation with *unknown*, distance-derived latencies.

Scenario from the paper's introduction: sensor network data aggregation.
Sensors are scattered on the unit square; radio links exist within range
and their latency grows with physical distance.  Crucially, nodes do NOT
know their link latencies ("due to fluctuations in network quality, a node
cannot necessarily predict the latency of a connection" — footnote 1).

The pipeline demonstrated:

1. every node *measures* its adjacent latencies with probe pings
   (Section 4.2's latency discovery);
2. the measured tables drive ℓ-DTG local broadcast;
3. the full unknown-latency General EID solves all-to-all aggregation
   end to end, and we compare it with push--pull, which never needs to
   learn anything.

Run with: ``python examples/sensor_network.py``
"""

import random

from repro import generators, run_general_eid_unknown_latencies, run_push_pull
from repro.protocols.base import PhaseRunner
from repro.protocols.discovery import run_latency_discovery
from repro.protocols.dtg import ldtg_factory
from repro.sim.runner import local_broadcast_complete


def main() -> None:
    graph = generators.random_geometric(
        40, radius=0.28, latency_scale=25, rng=random.Random(3)
    )
    print(
        f"sensor field: {graph.num_nodes} nodes, {graph.num_edges} links, "
        f"latencies {graph.distinct_latencies()[0]}"
        f"..{graph.max_latency()}"
    )

    # Step 1: measure adjacent latencies with probe pings.
    window = graph.max_latency()  # generous response window
    runner = PhaseRunner(graph)
    measured = run_latency_discovery(graph, window=window, runner=runner)
    total_edges = graph.num_edges
    measured_edges = sum(len(t) for t in measured.values()) // 2
    print(
        f"discovery: measured {measured_edges}/{total_edges} link latencies "
        f"in {runner.total_rounds} rounds"
    )
    correct = all(
        graph.latency(u, v) == latency
        for u, table in measured.items()
        for v, latency in table.items()
    )
    print(f"all measurements exact: {correct}")

    # Step 2: measured tables drive ℓ-DTG local broadcast (each sensor
    # exchanges its reading with every neighbor) without ever touching the
    # latency oracle.
    ell = graph.max_latency()
    runner.run_phase(
        ldtg_factory(graph, ell, measured=measured), latencies_known=False
    )
    view = type("View", (), {"graph": graph, "state": runner.state})()
    print(
        f"ℓ-DTG over measured links: local broadcast complete = "
        f"{local_broadcast_complete(ell)(view)} "
        f"(cumulative {runner.total_rounds} rounds)"
    )

    # Step 3: full unknown-latency pipeline vs push--pull.
    eid = run_general_eid_unknown_latencies(graph, seed=3)
    push_pull = run_push_pull(graph, mode="all_to_all", seed=3)
    print()
    print(
        f"all-to-all aggregation, unknown latencies:\n"
        f"  discover-then-EID : complete at round {eid.first_complete_round}, "
        f"terminated (detected) at {eid.rounds}\n"
        f"  push--pull        : complete at round {push_pull.rounds} "
        f"(but cannot detect completion by itself)"
    )


if __name__ == "__main__":
    main()
