#!/usr/bin/env python
"""Failure drill: how robust is each dissemination strategy?

The paper's conclusion conjectures that "push--pull is relatively robust to
failures, while our other approaches are not."  This drill makes the
comparison concrete on a ring-of-cliques network:

1. **message loss** — drop every exchange with probability p: both
   protocols retry and complete, push--pull degrading least;
2. **random crashes** — kill random nodes: both survive (the spanner has
   Ω(n log n) edges of redundancy);
3. **the adversarial crash** — kill exactly the spanner neighborhood of
   one victim node: push--pull still reaches it through the dense graph,
   the spanner pipeline cannot — a single point of failure the paper's
   robustness remark is really about.

Run with: ``python examples/failure_drill.py``
"""

import random

from repro.graphs import generators
from repro.protocols.robustness import (
    run_push_pull_under_failures,
    run_spanner_pipeline_under_failures,
    spanner_cut_crashes,
)
from repro.sim.failures import CrashSchedule, MessageLoss


def report(label: str, push_pull, spanner) -> None:
    print(
        f"{label:<28} push-pull: {push_pull.rounds:>5} rounds, "
        f"coverage {push_pull.coverage:.2f} | spanner+RR: "
        f"{spanner.rounds:>5} rounds, coverage {spanner.coverage:.2f}"
    )


def main() -> None:
    graph = generators.ring_of_cliques(
        5, 8, inter_latency=4, rng=random.Random(0)
    )
    source = graph.nodes()[0]
    print(f"network: {graph.num_nodes} nodes in 5 cliques, WAN latency 4")
    print()

    print("drill 1 — message loss")
    for p in (0.0, 0.3, 0.6):
        push_pull = run_push_pull_under_failures(
            graph, MessageLoss(p, seed=1), source=source, seed=1
        )
        spanner = run_spanner_pipeline_under_failures(
            graph, MessageLoss(p, seed=2), source=source, seed=1
        )
        report(f"  loss p={p}", push_pull, spanner)
    print()

    print("drill 2 — random crashes")
    for count in (3, 6):
        crashes = CrashSchedule.random_crashes(
            graph.nodes(), count, by_round=3, rng=random.Random(4),
            protect=[source],
        )
        push_pull = run_push_pull_under_failures(
            graph, crashes, source=source, seed=2, max_rounds=5000
        )
        spanner = run_spanner_pipeline_under_failures(
            graph, crashes, source=source, seed=2
        )
        report(f"  crash {count} random nodes", push_pull, spanner)
    print()

    print("drill 3 — the adversarial crash (sever one spanner neighborhood)")
    crashes, victim, crash_count = spanner_cut_crashes(graph, seed=3, source=source)
    push_pull = run_push_pull_under_failures(
        graph, crashes, source=source, seed=3, max_rounds=5000
    )
    spanner = run_spanner_pipeline_under_failures(
        graph, crashes, source=source, seed=3
    )
    report(f"  cut node {victim} ({crash_count} crashes)", push_pull, spanner)
    print()
    print(
        "Push--pull keeps covering every reachable survivor in all three\n"
        "drills; the spanner pipeline survives loss and random crashes but\n"
        "fails the targeted one — exactly the paper's robustness remark."
    )


if __name__ == "__main__":
    main()
