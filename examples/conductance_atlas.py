#!/usr/bin/env python
"""An atlas of weighted conductance across topologies (Definitions 1-2).

The paper's central claim is that the pair ``(φ*, ℓ*)`` characterizes how
fast gossip can run on a latency graph, the way conductance alone does for
unweighted graphs.  This atlas computes, for a zoo of topologies:

* the conductance profile ``φ_ℓ`` across latency thresholds,
* the weighted conductance ``φ*`` and critical latency ``ℓ*``,
* the closed-form prediction where one exists (cross-check),
* the measured push--pull broadcast time vs the ``(ℓ*/φ*)·log n`` budget.

Watch how the *critical latency* moves: on a bimodal expander the fast
backbone wins (``ℓ* = 1``); on a ring of cliques the slow links are
unavoidable (``ℓ* = WAN latency``).

Run with: ``python examples/conductance_atlas.py``
"""

import math
import random

from repro.conductance import weighted_conductance
from repro.conductance.closed_form import (
    clique_conductance,
    cycle_conductance,
    dumbbell_conductance,
    path_conductance,
    star_conductance,
)
from repro.graphs import generators
from repro.graphs.latency_models import bimodal_latency
from repro.protocols.push_pull import run_push_pull


def atlas_entries():
    rng = random.Random(0)
    yield "clique K16", generators.clique(16), clique_conductance(16)
    yield "star S16", generators.star(16), star_conductance(16)
    yield "path P16", generators.path(16), path_conductance(16)
    yield "cycle C16", generators.cycle(16), cycle_conductance(16)
    yield "dumbbell 2xK8", generators.dumbbell(8), dumbbell_conductance(8)
    yield (
        "ring of cliques (WAN 8)",
        generators.ring_of_cliques(4, 4, inter_latency=8, rng=rng),
        None,
    )
    yield (
        "bimodal expander",
        generators.random_regular(
            16, 6, latency_model=bimodal_latency(1, 16, 0.5), rng=rng
        ),
        None,
    )
    yield (
        "grid 4x4, uniform latency 1..4",
        generators.grid(
            4, 4, latency_model=lambda u, v, r: r.randint(1, 4), rng=rng
        ),
        None,
    )


def main() -> None:
    header = (
        f"{'topology':<30} {'phi*':>8} {'ell*':>5} {'ell*/phi*':>10} "
        f"{'closed form':>12} {'pp rounds':>10} {'budget':>8}"
    )
    print(header)
    print("-" * len(header))
    for name, graph, closed_form in atlas_entries():
        wc = weighted_conductance(graph, method="exact")
        result = run_push_pull(graph, source=graph.nodes()[0], seed=3)
        budget = wc.dissemination_bound * math.log2(graph.num_nodes)
        closed = f"{closed_form:.4f}" if closed_form is not None else "-"
        print(
            f"{name:<30} {wc.phi_star:>8.4f} {wc.critical_latency:>5} "
            f"{wc.dissemination_bound:>10.1f} {closed:>12} "
            f"{result.rounds:>10} {budget:>8.0f}"
        )
    print()
    print("profiles (phi_ell by latency threshold):")
    for name, graph, _ in atlas_entries():
        wc = weighted_conductance(graph, method="exact")
        profile = ", ".join(
            f"phi_{ell}={phi:.3f}" for ell, phi in sorted(wc.profile.items())
        )
        print(f"  {name:<30} {profile}")


if __name__ == "__main__":
    main()
