#!/usr/bin/env python
"""Database replication across racks: protocol choice under latency skew.

Scenario from the paper's introduction: distributed database replication.
A write lands on one server and must reach every replica.  Inside a rack,
links are fast (latency 1); between racks, links are slow.  We sweep the
inter-rack latency and compare:

* **push--pull** — oblivious to latencies; pays the weighted-conductance
  price ``(ℓ*/φ*)·log n`` (Theorem 12);
* **push-only flooding** — the strawman that cannot pull;
* **EID** — exploits known latencies via the spanner route (Theorem 14).

The interesting read-out is how each protocol's completion time scales as
the WAN gets slower: push--pull scales with ``ℓ*`` (it keeps gossiping over
whatever cut edges exist), while the flood wastes rounds on slow links.

Run with: ``python examples/datacenter_replication.py``
"""

from repro import compute_bounds, generators, run_flooding, run_push_pull
from repro.protocols.base import PhaseRunner
from repro.protocols.eid import run_eid


def replicate(num_racks: int, rack_size: int, wan_latency: int) -> dict:
    graph = generators.two_tier_datacenter(
        num_racks, rack_size, inter_rack_latency=wan_latency
    )
    bounds = compute_bounds(graph, conductance_method="sweep")

    push_pull = run_push_pull(graph, source=0, seed=1)
    flood = run_flooding(graph, source=0, push_only=True)

    # EID solves all-to-all; measure when the write (node 0's rumor) has
    # reached everyone.
    everyone = set(graph.nodes())
    runner = PhaseRunner(
        graph, watch=lambda s: all(s.knows(v, 0) for v in everyone)
    )
    run_eid(graph, bounds.diameter, seed=1, runner=runner)
    eid_rounds = runner.first_complete_round

    return {
        "wan_latency": wan_latency,
        "ell_star": bounds.conductance.critical_latency,
        "phi_star": bounds.conductance.phi_star,
        "push_pull": push_pull.rounds,
        "push_only_flood": flood.rounds,
        "eid_complete": eid_rounds,
    }


def main() -> None:
    print("replicating one write to 8 racks x 6 servers, sweeping WAN latency")
    header = (
        f"{'WAN lat':>8} {'ell*':>5} {'phi*':>7} "
        f"{'push-pull':>10} {'push-only':>10} {'EID':>6}"
    )
    print(header)
    print("-" * len(header))
    for wan_latency in (2, 8, 32, 128):
        row = replicate(num_racks=8, rack_size=6, wan_latency=wan_latency)
        print(
            f"{row['wan_latency']:>8} {row['ell_star']:>5} "
            f"{row['phi_star']:>7.3f} {row['push_pull']:>10} "
            f"{row['push_only_flood']:>10} {row['eid_complete']:>6}"
        )
    print()
    print(
        "All three scale linearly in the WAN latency (every route crosses\n"
        "the core), matching the ℓ* term of Theorem 12. Push--pull is the\n"
        "cheapest despite knowing nothing; the push-only flood pays extra\n"
        "rounds before the leaders are reached; EID is correct and self-\n"
        "terminating but carries the D·log³n constants the paper predicts."
    )


if __name__ == "__main__":
    main()
