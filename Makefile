# Convenience targets for the Gossiping-with-Latencies reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full scale-smoke sweep-smoke examples experiments report regress clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_PROFILE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Mega-scale memory smoke: the n=10^5 vector-backend broadcast and the
# n=10^5 chunked-streaming all-to-all, each re-run in a subprocess under
# an enforced RLIMIT_DATA ceiling, then the engine_scale regression gate.
scale-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_engine_scale.py -p no:cacheprovider -q
	PYTHONPATH=src $(PYTHON) -m repro regress --suite engine_scale

# Crash-recovery smoke for checkpointed sweeps: SIGKILL an E1 sweep at
# an injected fault point, resume it, and demand the exported canonical
# table bytes match an uninterrupted run; then run E6 as two independent
# shard processes and demand the coordinator's merge matches serial.
SWEEP_TMP ?= /tmp/repro-sweep-smoke
sweep-smoke:
	rm -rf $(SWEEP_TMP) && mkdir -p $(SWEEP_TMP)
	@echo "== kill E1 mid-sweep (expect SIGKILL), then resume"
	! REPRO_FAULT_AT=trial:2:kill PYTHONPATH=src $(PYTHON) -m repro sweep E1 --store $(SWEEP_TMP)/killed >/dev/null 2>&1
	PYTHONPATH=src $(PYTHON) -m repro sweep E1 --store $(SWEEP_TMP)/killed --resume --export $(SWEEP_TMP)/resumed.json >/dev/null
	PYTHONPATH=src $(PYTHON) -m repro sweep E1 --store $(SWEEP_TMP)/clean --export $(SWEEP_TMP)/clean.json >/dev/null
	cmp $(SWEEP_TMP)/resumed.json $(SWEEP_TMP)/clean.json
	@echo "== resumed E1 table is byte-identical to the clean run"
	@echo "== two-shard E6, merged by the coordinator"
	PYTHONPATH=src $(PYTHON) -m repro sweep E6 --shard 0/2 --store $(SWEEP_TMP)/shards >/dev/null
	PYTHONPATH=src $(PYTHON) -m repro sweep E6 --shard 1/2 --store $(SWEEP_TMP)/shards >/dev/null
	PYTHONPATH=src $(PYTHON) -m repro sweep E6 --store $(SWEEP_TMP)/shards --export $(SWEEP_TMP)/merged.json >/dev/null
	PYTHONPATH=src $(PYTHON) -m repro sweep E6 --store $(SWEEP_TMP)/serial --export $(SWEEP_TMP)/serial.json >/dev/null
	cmp $(SWEEP_TMP)/merged.json $(SWEEP_TMP)/serial.json
	@echo "== shard-merged E6 table is byte-identical to the serial run"
	rm -rf $(SWEEP_TMP)

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; echo; done

experiments:
	$(PYTHON) -m repro run-experiment all

# Render the full observability report for one experiment (markdown to
# stdout); override with `make report EXPERIMENT=E12`.
EXPERIMENT ?= E6
report:
	PYTHONPATH=src $(PYTHON) -m repro report $(EXPERIMENT) --profile quick

regress:
	PYTHONPATH=src $(PYTHON) -m repro regress --suite all

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
