# Convenience targets for the Gossiping-with-Latencies reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full scale-smoke examples experiments report regress clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_PROFILE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Mega-scale memory smoke: the n=10^5 vector-backend broadcast and the
# n=10^5 chunked-streaming all-to-all, each re-run in a subprocess under
# an enforced RLIMIT_DATA ceiling, then the engine_scale regression gate.
scale-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_engine_scale.py -p no:cacheprovider -q
	PYTHONPATH=src $(PYTHON) -m repro regress --suite engine_scale

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; echo; done

experiments:
	$(PYTHON) -m repro run-experiment all

# Render the full observability report for one experiment (markdown to
# stdout); override with `make report EXPERIMENT=E12`.
EXPERIMENT ?= E6
report:
	PYTHONPATH=src $(PYTHON) -m repro report $(EXPERIMENT) --profile quick

regress:
	PYTHONPATH=src $(PYTHON) -m repro regress --suite all

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
